"""The release-mechanism boundary: decayed and windowed private sums.

Every moment-carrying layer of the library — the ``core/`` estimators,
the serving shards, the merge rule, the wire format — talks to its noise
source through one implicit surface: ``observe`` / ``observe_batch`` /
``advance_sum`` / ``current_sum`` / ``release_noise_variance`` /
``released_moments`` / ``steps_taken``.  This module makes that surface
explicit as the :class:`ReleaseMechanism` protocol and ships two new
implementations behind it for **non-stationary** streams:

* :class:`DecayedTreeMechanism` — exponentially-forgotten private sums
  ``Σ_{i≤t} γ^{t−i} υ_i`` (the forgetting-factor formulation every
  production incremental regressor carries).  The binary-tree telescoping
  survives the weighting exactly: the level-``j`` node closing at step
  ``b`` stores the γ-decayed sub-sum *decayed to b*, so the release at
  ``t`` is the decayed prefix plus ``γ^{t−b_j}`` times each active node's
  frozen noise.  Per-node sensitivity is the element's decay weight
  inside its node, at most ``γ⁰·Δ₂ = Δ₂`` — so the per-node ``σ`` and the
  whole ``(ε, δ)`` ledger of Algorithm 4 carry over unchanged, while the
  *released* noise variance **shrinks** to ``Σ_j γ^{2(t−b_j)}·σ²_node``.
  At ``γ = 1`` every weight is exactly ``1.0`` and the mechanism runs the
  plain :class:`~repro.privacy.tree.TreeMechanism` code paths, so it is
  bit-identical to the unweighted tree under one seed.

* :class:`SlidingWindowMechanism` — hard-expiry private sums over the
  last ``W`` elements, as a ring of disjoint chunk sub-trees.  Each chunk
  of ``C`` consecutive elements gets its own full-budget
  :class:`~repro.privacy.tree.TreeMechanism` (parallel composition over
  the disjoint chunks keeps the whole stream at one ``(ε, δ)``); a
  completed chunk freezes into its final noisy total, and chunks expire
  whole once the covered count would exceed ``W``.  The released noise
  variance is bounded by the retained sub-tree count:
  ``(⌊W/C⌋ + 1) · levels(C) · σ²_node(C)``.  Finite windows need **no
  horizon** (expiry caps the live state at ``O(W/C + levels(C)·d)``
  floats); ``window = inf`` degenerates to a single never-expiring tree
  over the full horizon — bit-identical to the plain tree.

Both implementations report their :attr:`~ReleaseMechanism
.effective_weight` — ``Σ γ^{t−i} = (1−γ^t)/(1−γ)`` and the covered
window count respectively — which flows through
:class:`~repro.privacy.tree.ReleasedMoments` /
:func:`~repro.privacy.tree.merge_released` so cross-shard merges of
weighted moments keep the variance ledger and the estimators' logical
``t`` correct.

A third implementation, :class:`SketchNoiseMechanism`, carries the
**sketch-side** noise model of *Private Sketches for Linear Regression*
(PAPERS.md): no tree at all — the exact running sum of the (sketched)
moment stream plus **one fresh Gaussian draw per ingested block**, added
at ingest time.  Each stream element lives in exactly one block, so the
per-block Gaussian mechanism at the Step-4-pinned sensitivity composes
in parallel across blocks and the whole release sequence is ``(ε, δ)``-
DP; every later read is post-processing of the already-noisy block
totals.  The released noise variance is ``draws · σ²_block`` — it grows
with the number of *blocks*, not ``popcount(t)`` tree nodes, which is
why batch serving with large blocks beats tree noise and per-point
streaming loses to it (see ``docs/SERVING.md`` §"Sketch backend").
"""

from __future__ import annotations

import math
from collections import deque
from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import (
    check_decay,
    check_int,
    check_positive,
    check_release_knobs,
    check_rng,
    check_window,
)
from ..exceptions import (
    NotSupportedError,
    StreamExhaustedError,
    ValidationError,
)
from .parameters import PrivacyParams
from .tree import (
    TreeMechanism,
    _node_sigma,
    _snapshot_released,
    coerce_stream_block,
    coerce_stream_element,
    tree_error_bound,
    tree_error_bound_spectral,
)

__all__ = [
    "ReleaseMechanism",
    "DecayedTreeMechanism",
    "SketchNoiseMechanism",
    "SlidingWindowMechanism",
    "make_release_mechanism",
]


@runtime_checkable
class ReleaseMechanism(Protocol):
    """The moment-release surface every noise source implements.

    This is the contract the estimators, serving shards, merge rule, and
    wire snapshots were already written against implicitly — extracted so
    new release semantics (decay, windows, sketch-side noise) plug
    in without touching the layers above.  Implementations:
    :class:`~repro.privacy.tree.TreeMechanism`,
    :class:`~repro.privacy.hybrid.HybridMechanism`,
    :class:`DecayedTreeMechanism`, :class:`SlidingWindowMechanism`,
    :class:`SketchNoiseMechanism`.

    ``isinstance(obj, ReleaseMechanism)`` checks the surface structurally
    (``runtime_checkable`` protocols check attribute presence, not
    signatures).
    """

    shape: tuple[int, ...]
    steps_taken: int

    def observe(self, value) -> np.ndarray: ...

    def observe_batch(self, values) -> np.ndarray: ...

    def advance_batch(self, values) -> np.ndarray: ...

    def current_sum(self) -> np.ndarray: ...

    def release_noise_variance(self) -> float: ...

    def released_moments(self): ...

    def memory_floats(self) -> int: ...

    @property
    def effective_weight(self) -> float: ...


class DecayedTreeMechanism(TreeMechanism):
    """Continual private **γ-decayed** sums ``Σ_{i≤t} γ^{t−i} υ_i``.

    A drop-in :class:`~repro.privacy.tree.TreeMechanism` whose running
    sum forgets exponentially.  The prefix-plus-frozen-noise
    decomposition survives the weighting: every observation first fades
    the clean prefix by ``γ``, and every *frozen* node noise ``η_j``
    (attached when its node closed at step ``b_j``) is read back scaled
    by ``γ^{t−b_j}`` — exactly the factor its node's decayed sub-sum
    carries inside the decayed prefix at time ``t``, so the telescoping
    identity of Algorithm 4 holds verbatim.

    Privacy: each stream element still touches at most ``levels`` nodes,
    and its weight inside any node is ``γ^{b−i} ≤ 1``, so the per-node L2
    sensitivity is at most ``Δ₂`` and the plain tree's per-node ``σ`` and
    ``(ε, δ)`` accounting apply unchanged (the decay only ever *shrinks*
    sensitivity, never grows it).  Utility improves correspondingly: the
    released noise variance is ``Σ_{j active} γ^{2(t−b_j)} σ²_node ≤
    popcount(t)·σ²_node``.

    ``decay = 1.0`` runs the parent's unweighted code paths — including
    the vectorized batch kernels — so it is **bit-identical** to
    :class:`~repro.privacy.tree.TreeMechanism` under one seed; both
    configurations draw noise in the same order, so they may be compared
    stream-for-stream.

    Parameters
    ----------
    decay:
        The forgetting factor ``γ ∈ (0, 1]``.
    horizon, shape, l2_sensitivity, params, rng:
        As in :class:`~repro.privacy.tree.TreeMechanism`.
    """

    def __init__(
        self,
        horizon: int,
        shape: tuple[int, ...],
        l2_sensitivity: float,
        params: PrivacyParams,
        rng: np.random.Generator | int | None = None,
        decay: float = 1.0,
    ) -> None:
        self.decay = check_decay("decay", decay)
        super().__init__(horizon, shape, l2_sensitivity, params, rng)

    # ------------------------------------------------------------------
    # Weighted state transitions (γ < 1); γ = 1 delegates to the parent
    # so the unweighted fast paths stay bit-identical.
    # ------------------------------------------------------------------

    def _noise_fade(self, level: int, t: int) -> float:
        """``γ^{t − b}`` for the level's active node (closed at ``b``)."""
        # The level-j node active at t closed at (t >> j) << j, so the
        # elapsed age is the j low bits of t.
        return self.decay ** (t & ((1 << level) - 1))

    def observe(self, value: np.ndarray | float) -> np.ndarray:
        if self.decay == 1.0:
            return super().observe(value)
        if self.steps_taken >= self.horizon:
            raise StreamExhaustedError(
                f"DecayedTreeMechanism configured for horizon {self.horizon} "
                f"received element {self.steps_taken + 1}"
            )
        flat = self._coerce(value)
        eta = self._ensure_eta()
        self.steps_taken += 1
        t = self.steps_taken
        self._prefix = self.decay * self._prefix + flat
        i = (t & -t).bit_length() - 1
        self._active[:i] = False
        eta[i] = self._rng.normal(0.0, self.sigma_node, size=self._flat_dim)
        self._active[i] = True
        return self._release_current()

    def observe_batch(self, values: np.ndarray) -> np.ndarray:
        if self.decay == 1.0:
            return super().observe_batch(values)
        flat = self._coerce_batch(values)
        k = flat.shape[0]
        if self.steps_taken + k > self.horizon:
            raise StreamExhaustedError(
                f"DecayedTreeMechanism configured for horizon {self.horizon} "
                f"received a block of {k} elements at step {self.steps_taken}"
            )
        eta = self._ensure_eta()
        # One draw for the whole block, consumed row-by-row as each node
        # closes — the same bit-stream usage as k sequential observes.
        noise = self._rng.normal(0.0, self.sigma_node, size=(k, self._flat_dim))
        releases = np.empty((k, self._flat_dim))
        for r in range(k):
            self.steps_taken += 1
            t = self.steps_taken
            self._prefix = self.decay * self._prefix + flat[r]
            i = (t & -t).bit_length() - 1
            self._active[:i] = False
            eta[i] = noise[r]
            self._active[i] = True
            release = self._prefix.copy()
            for j in range(self.levels):
                if self._active[j]:
                    release += self._noise_fade(j, t) * eta[j]
            releases[r] = release
        self._last_release = releases[-1].copy()
        return releases.reshape((k,) + self.shape)

    def advance_batch(self, values: np.ndarray) -> np.ndarray:
        if self.decay == 1.0:
            return super().advance_batch(values)
        flat = self._coerce_batch(values)
        k = flat.shape[0]
        if self.steps_taken + k > self.horizon:
            raise StreamExhaustedError(
                f"DecayedTreeMechanism configured for horizon {self.horizon} "
                f"received a block of {k} elements at step {self.steps_taken}"
            )
        eta = self._ensure_eta()
        noise = self._rng.normal(0.0, self.sigma_node, size=(k, self._flat_dim))
        for r in range(k):
            self.steps_taken += 1
            t = self.steps_taken
            self._prefix = self.decay * self._prefix + flat[r]
            i = (t & -t).bit_length() - 1
            self._active[:i] = False
            eta[i] = noise[r]
            self._active[i] = True
        return self._release_current()

    def advance_sum(self, total: np.ndarray | float, count: int) -> np.ndarray:
        """Advance ``count`` steps given the block's **γ-weighted** sum.

        The caller owns the contract that ``total`` equals
        ``Σ_i γ^{count−1−i} υ_i`` over the block — the block sum decayed
        to the block end (the serving shard computes it with one weighted
        BLAS product).  The running prefix fades by ``γ^count`` before the
        total folds in, which is exactly the sequential recursion
        telescoped over the block.
        """
        if self.decay == 1.0:
            return super().advance_sum(total, count)
        total_flat = self._coerce(total)
        count = check_int("count", count, minimum=1)
        if self.steps_taken + count > self.horizon:
            raise StreamExhaustedError(
                f"DecayedTreeMechanism configured for horizon {self.horizon} "
                f"received a block of {count} elements at step {self.steps_taken}"
            )
        eta = self._ensure_eta()
        t0 = self.steps_taken
        t_end = t0 + count
        self._prefix = self.decay**count * self._prefix + total_flat
        for j in range(self.levels):
            if (t_end >> j) & 1:
                closed_at = (t_end >> j) << j
                if closed_at > t0:
                    eta[j] = self._rng.normal(
                        0.0, self.sigma_node, size=self._flat_dim
                    )
                self._active[j] = True
            else:
                self._active[j] = False
        self.steps_taken = t_end
        return self._release_current()

    # ------------------------------------------------------------------
    # Weighted reads
    # ------------------------------------------------------------------

    def _release_current(self) -> np.ndarray:
        if self.decay == 1.0:
            return super()._release_current()
        release = self._prefix.copy()
        t = self.steps_taken
        for j in range(self.levels):
            if self._active[j]:
                release += self._noise_fade(j, t) * self._eta[j]
        self._last_release = release
        return release.reshape(self.shape)

    def release_noise_variance(self) -> float:
        if self.decay == 1.0:
            return super().release_noise_variance()
        t = self.steps_taken
        variance = 0.0
        for j in range(self.levels):
            if self._active[j]:
                variance += self._noise_fade(j, t) ** 2 * self.sigma_node**2
        return variance

    @property
    def effective_weight(self) -> float:
        """``Σ_{i≤t} γ^{t−i} = (1 − γ^t)/(1 − γ)`` (``t`` itself at γ=1)."""
        if self.decay == 1.0:
            return float(self.steps_taken)
        return (1.0 - self.decay**self.steps_taken) / (1.0 - self.decay)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DecayedTreeMechanism(horizon={self.horizon}, shape={self.shape}, "
            f"decay={self.decay}, params={self.params}, "
            f"sigma_node={self.sigma_node:.4g})"
        )


class SlidingWindowMechanism:
    """Private sums over the last ``W`` stream elements (hard expiry).

    The window is a ring of disjoint **chunk sub-trees**: consecutive
    elements fill a :class:`~repro.privacy.tree.TreeMechanism` of horizon
    ``C`` (the chunk length); a full chunk freezes into its final noisy
    total and a fresh chunk tree starts; frozen chunks expire whole, so
    the release covers between ``W − C + 1`` and ``W`` elements once the
    stream is longer than ``W``.  Because the chunks partition the
    stream, each element lives in exactly one full-``(ε, δ)`` sub-tree —
    parallel composition keeps the entire unbounded stream at ``(ε, δ)``
    — and dropping an expired chunk is post-processing (discarding
    outputs).  The released noise variance is bounded by the sub-tree
    count: at most ``⌊W/C⌋`` frozen totals (one active node each at chunk
    completion ≤ ``levels(C)·σ²_node``... summed) plus the live tree's
    ``popcount·σ²_node`` term — all reported exactly by
    :meth:`release_noise_variance`.

    ``window = math.inf`` degenerates to a single never-expiring tree
    over ``horizon`` (which is then required) and is **bit-identical** to
    the plain :class:`~repro.privacy.tree.TreeMechanism` under one seed.
    Finite windows need no horizon at all — expiry caps the state — which
    makes this the unbounded-stream mechanism of choice for hard-recency
    workloads (pass ``horizon`` anyway to keep a capacity cap).

    Parameters
    ----------
    window:
        The window length ``W`` (elements), an integer ≥ 1 or ``inf``.
    chunk:
        Chunk length ``C`` (elements per sub-tree); defaults to
        ``max(1, W // 4)``.  Smaller chunks track the window edge more
        tightly but retain more frozen totals.
    horizon:
        Optional capacity cap (required when ``window = inf``).
    shape, l2_sensitivity, params, rng:
        As in :class:`~repro.privacy.tree.TreeMechanism`.
    """

    def __init__(
        self,
        window: int | float,
        shape: tuple[int, ...],
        l2_sensitivity: float,
        params: PrivacyParams,
        rng: np.random.Generator | int | None = None,
        horizon: int | None = None,
        chunk: int | None = None,
    ) -> None:
        self.window = check_window("window", window)
        self.shape = tuple(int(s) for s in shape)
        self.l2_sensitivity = check_positive("l2_sensitivity", l2_sensitivity)
        self.params = params
        self._rng = check_rng(rng)
        self._flat_dim = int(np.prod(self.shape)) if self.shape else 1
        self.horizon = (
            None if horizon is None else check_int("horizon", horizon, minimum=1)
        )
        self.steps_taken = 0
        if math.isinf(self.window):
            if self.horizon is None:
                raise ValidationError(
                    "window=inf needs a horizon: the degenerate never-"
                    "expiring window is one tree over the full stream"
                )
            self.chunk = self.horizon
            self._frozen: deque[tuple[np.ndarray, float]] = deque()
            self._current_tree = TreeMechanism(
                horizon=self.horizon,
                shape=self.shape,
                l2_sensitivity=self.l2_sensitivity,
                params=self.params,
                rng=self._rng,
            )
        else:
            if chunk is None:
                chunk = max(1, int(self.window) // 4)
            self.chunk = check_int("chunk", chunk, minimum=1)
            if self.chunk > self.window:
                raise ValidationError(
                    f"chunk ({self.chunk}) cannot exceed window ({self.window})"
                )
            self._frozen = deque()
            self._current_tree = self._new_chunk_tree()
        self._frozen_total = np.zeros(self._flat_dim)
        self._frozen_variance = 0.0
        self.expired_steps = 0

    def _new_chunk_tree(self) -> TreeMechanism:
        return TreeMechanism(
            horizon=self.chunk,
            shape=self.shape,
            l2_sensitivity=self.l2_sensitivity,
            params=self.params,
            rng=self._rng,
        )

    # ------------------------------------------------------------------
    # Ring bookkeeping
    # ------------------------------------------------------------------

    @property
    def covered_steps(self) -> int:
        """Elements the current release covers (≤ ``window``)."""
        return len(self._frozen) * self.chunk + self._current_tree.steps_taken

    @staticmethod
    def covered_at(t: int, window: int | float, chunk: int) -> int:
        """Covered count after ``t`` ingested elements — pure arithmetic.

        The closed form of :attr:`covered_steps` as a function of the
        stream position alone, so callers that solve at interior steps of
        a batch (the estimators' ``solve_every`` schedule) can size the
        logical timestep without replaying the ring.  Chunks roll lazily
        (a full live tree freezes on the *next* ingest), so at multiples
        of ``chunk`` the live tree is full and not yet frozen.
        """
        if math.isinf(window):
            return int(t)
        t = int(t)
        if t <= 0:
            return 0
        if t % chunk == 0:
            live = chunk
            completed = t // chunk - 1
        else:
            live = t % chunk
            completed = t // chunk
        kept = min(completed, (int(window) - live) // chunk)
        return kept * chunk + live

    @property
    def effective_weight(self) -> float:
        """Total weight of the covered elements — the covered count."""
        return float(self.covered_steps)

    def _recompute_frozen(self) -> None:
        total = np.zeros(self._flat_dim)
        variance = 0.0
        for value, var in self._frozen:
            total = total + value
            variance += var
        self._frozen_total = total
        self._frozen_variance = variance

    def _roll_chunk(self) -> None:
        """Freeze the full chunk's final noisy total; start a fresh chunk."""
        self._frozen.append(
            (
                np.asarray(
                    self._current_tree.current_sum(), dtype=float
                ).reshape(self._flat_dim),
                float(self._current_tree.release_noise_variance()),
            )
        )
        self._current_tree = self._new_chunk_tree()
        self._expire()

    def _expire(self) -> None:
        """Drop whole frozen chunks while coverage would exceed the window."""
        changed = False
        while (
            self._frozen
            and len(self._frozen) * self.chunk + self._current_tree.steps_taken
            > self.window
        ):
            self._frozen.popleft()
            self.expired_steps += self.chunk
            changed = True
        if changed or self._frozen or self._frozen_variance:
            self._recompute_frozen()

    def _check_capacity(self, incoming: int) -> None:
        if self.horizon is not None and self.steps_taken + incoming > self.horizon:
            raise StreamExhaustedError(
                f"SlidingWindowMechanism configured for horizon "
                f"{self.horizon} received a block of {incoming} elements "
                f"at step {self.steps_taken}"
            )

    # ------------------------------------------------------------------
    # Core streaming API (the ReleaseMechanism surface)
    # ------------------------------------------------------------------

    def observe(self, value: np.ndarray | float) -> np.ndarray:
        """Ingest the next element; return the noisy **windowed** sum."""
        if math.isinf(self.window):
            release = self._current_tree.observe(value)
            self.steps_taken += 1
            return release
        array = coerce_stream_element(value, self.shape)
        self._check_capacity(1)
        if self._current_tree.steps_taken >= self._current_tree.horizon:
            self._roll_chunk()
        tree_release = np.asarray(
            self._current_tree.observe(array), dtype=float
        ).reshape(self._flat_dim)
        self.steps_taken += 1
        self._expire()
        return (self._frozen_total + tree_release).reshape(self.shape)

    def observe_batch(self, values: np.ndarray) -> np.ndarray:
        """Ingest a block; return all ``k`` noisy windowed sums.

        Split along chunk boundaries (like the Hybrid mechanism's epoch
        split), so rng consumption and chunk rollovers are identical to
        the same elements arriving one at a time.  Expiry is applied per
        sub-piece, so every returned row reflects the window at its step.
        """
        if math.isinf(self.window):
            releases = self._current_tree.observe_batch(values)
            self.steps_taken += releases.shape[0]
            return releases
        array = coerce_stream_block(values, self.shape)
        k = array.shape[0]
        self._check_capacity(k)
        # Element-at-a-time: each returned row must reflect the window *at
        # its own step* (expiry can trigger on any element, not just at
        # chunk boundaries).  Rng consumption still matches any batched
        # split — the chunk trees' batch and sequential paths consume the
        # bit stream identically.
        releases = np.empty((k, self._flat_dim))
        for r in range(k):
            releases[r] = np.asarray(
                self.observe(array[r]), dtype=float
            ).reshape(self._flat_dim)
        return releases.reshape((k,) + self.shape)

    def advance_batch(self, values: np.ndarray) -> np.ndarray:
        """Ingest a block; release only the final noisy windowed sum."""
        if math.isinf(self.window):
            release = self._current_tree.advance_batch(values)
            self.steps_taken += np.asarray(values).shape[0]
            return release
        array = coerce_stream_block(values, self.shape)
        k = array.shape[0]
        self._check_capacity(k)
        flat = array.reshape(k, self._flat_dim)
        start = 0
        while start < k:
            if self._current_tree.steps_taken >= self._current_tree.horizon:
                self._roll_chunk()
            capacity = self._current_tree.horizon - self._current_tree.steps_taken
            stop = min(start + capacity, k)
            self._current_tree.advance_batch(
                flat[start:stop].reshape((stop - start,) + self.shape)
            )
            start = stop
        self.steps_taken += k
        self._expire()
        return self.current_sum()

    def advance_sum(self, total: np.ndarray | float, count: int) -> np.ndarray:
        """Refused: block totals cannot be split at chunk boundaries.

        The sampled-noise fast tier hands the mechanism one pre-reduced
        block total; a finite window must attribute each element to its
        chunk sub-tree, which a single total cannot be decomposed into.
        Use the exact/batched tiers (``observe_batch``/``advance_batch``)
        with windowed mechanisms.
        """
        if math.isinf(self.window):
            release = self._current_tree.advance_sum(total, count)
            self.steps_taken += int(count)
            return release
        raise NotSupportedError(
            "SlidingWindowMechanism cannot ingest pre-reduced block totals "
            "(advance_sum): a finite window must split elements at chunk "
            "boundaries; use observe_batch/advance_batch (ingest='exact')"
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def current_sum(self) -> np.ndarray:
        """The latest noisy windowed sum (post-processing, free)."""
        tree_sum = np.asarray(
            self._current_tree.current_sum(), dtype=float
        ).reshape(self._flat_dim)
        return (self._frozen_total + tree_sum).reshape(self.shape)

    def release_noise_variance(self) -> float:
        """Per-coordinate noise variance of the current windowed release.

        Sums the retained frozen chunks' final-release variances and the
        live chunk tree's term — independent Gaussians, so variances add;
        bounded by ``(⌊W/C⌋ + 1)·levels(C)·σ²_node`` regardless of the
        stream length.
        """
        return self._frozen_variance + self._current_tree.release_noise_variance()

    def released_moments(self):
        """Snapshot the current windowed release (picklable wire format)."""
        return _snapshot_released(self)

    def _max_ring_trees(self) -> int:
        """Capacity bound on retained sub-trees: ``⌊W/C⌋ + 1``."""
        return int(self.window) // self.chunk + 1

    def error_bound(self, beta: float = 0.05) -> float:
        """High-probability error radius of the windowed releases.

        Sums (in quadrature — the sub-trees' noises are independent) the
        per-chunk Proposition C.1 radii at the **capacity bound**
        ``⌊W/C⌋ + 1`` on retained sub-trees, splitting the confidence
        ``β`` evenly.  Like the plain tree's horizon-based bound this is
        a configuration constant, not a function of the live ring — so
        callers that size solves from it (the estimators' ``α``) agree
        between batched and sequential ingestion.
        """
        if math.isinf(self.window):
            return self._current_tree.error_bound(beta)
        n = self._max_ring_trees()
        share = beta / n
        per_chunk = tree_error_bound(
            self.chunk, self._flat_dim, self.l2_sensitivity, self.params, share
        )
        return float(math.sqrt(n) * per_chunk)

    def error_bound_spectral(self, beta: float = 0.05) -> float:
        """Spectral-norm error radius (square-matrix streams only)."""
        if len(self.shape) != 2 or self.shape[0] != self.shape[1]:
            raise ValidationError(
                f"spectral error bound needs a square matrix shape, got {self.shape}"
            )
        if math.isinf(self.window):
            return self._current_tree.error_bound_spectral(beta)
        n = self._max_ring_trees()
        share = beta / n
        per_chunk = tree_error_bound_spectral(
            self.chunk, self.shape[0], self.l2_sensitivity, self.params, share
        )
        return float(math.sqrt(n) * per_chunk)

    def memory_floats(self) -> int:
        """Floats held: the frozen ring plus one live chunk tree."""
        return (
            (len(self._frozen) + 1) * self._flat_dim
            + self._current_tree.memory_floats()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlidingWindowMechanism(window={self.window}, chunk={self.chunk}, "
            f"shape={self.shape}, params={self.params}, "
            f"covered={self.covered_steps}, steps={self.steps_taken})"
        )


class SketchNoiseMechanism:
    """Continual private sums with **per-block sketch-side** noise.

    The release model of *Private Sketches for Linear Regression*
    (PAPERS.md) adapted to continual release: keep the **exact** running
    sum of the (sketched) moment stream and add **one fresh Gaussian
    draw per ingested block**, at ingest time, calibrated like a single
    tree node (``levels = 1``):

        ``σ_block = Δ₂ · sqrt(2 ln(2/δ)) / ε``.

    Privacy: the mechanism's transcript is the sequence of noisy block
    totals (all later releases are their running sums — post-processing).
    One stream element changes exactly **one** block total, by at most
    the Step-4-pinned ``Δ₂``, so each block is a plain ``(ε, δ)``
    Gaussian mechanism and parallel composition over the disjoint blocks
    keeps the entire stream at one ``(ε, δ)`` — no ``levels`` factor
    anywhere.

    Utility: the released noise variance is ``draws · σ²_block`` where
    ``draws`` counts ingested blocks, reported exactly by
    :meth:`release_noise_variance`.  Large-block serving therefore beats
    the tree (few draws, each ``levels²`` cheaper); per-point streaming
    (``t`` draws by step ``t``) loses to the tree's ``popcount(t)``
    nodes.  That trade is the point: serving shards ingest in blocks.

    Determinism: :meth:`observe_batch` consumes the rng exactly like
    ``k`` sequential :meth:`observe` calls (one draw per element — each
    element is its own block), and :meth:`advance_batch` /
    :meth:`advance_sum` draw **one** Gaussian per block each, so the
    exact and fast serving tiers consume identical noise bits and differ
    only in the float summation order of the exact block totals.

    Parameters
    ----------
    horizon:
        Capacity cap ``T`` (blocks can never cover more elements).
    shape, l2_sensitivity, params, rng:
        As in :class:`~repro.privacy.tree.TreeMechanism`.
    """

    def __init__(
        self,
        horizon: int,
        shape: tuple[int, ...],
        l2_sensitivity: float,
        params: PrivacyParams,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.horizon = check_int("horizon", horizon, minimum=1)
        self.shape = tuple(int(s) for s in shape)
        self.l2_sensitivity = check_positive("l2_sensitivity", l2_sensitivity)
        self.params = params
        self._rng = check_rng(rng)
        self._flat_dim = int(np.prod(self.shape)) if self.shape else 1
        self.sigma_block = _node_sigma(1, self.l2_sensitivity, params)
        self.steps_taken = 0
        self.noise_draws = 0
        self._sum = np.zeros(self._flat_dim)

    def _check_capacity(self, incoming: int) -> None:
        if self.steps_taken + incoming > self.horizon:
            raise StreamExhaustedError(
                f"SketchNoiseMechanism configured for horizon {self.horizon} "
                f"received a block of {incoming} elements at step "
                f"{self.steps_taken}"
            )

    def _ingest_total(self, total_flat: np.ndarray) -> None:
        """Fold one block total into the sum with one fresh noise draw."""
        noise = self._rng.normal(0.0, self.sigma_block, size=self._flat_dim)
        self._sum = self._sum + total_flat + noise
        self.noise_draws += 1

    # ------------------------------------------------------------------
    # Core streaming API (the ReleaseMechanism surface)
    # ------------------------------------------------------------------

    def observe(self, value: np.ndarray | float) -> np.ndarray:
        """Ingest one element as its own block; return the noisy sum."""
        array = coerce_stream_element(value, self.shape)
        self._check_capacity(1)
        self._ingest_total(array.reshape(self._flat_dim))
        self.steps_taken += 1
        return self.current_sum()

    def observe_batch(self, values: np.ndarray) -> np.ndarray:
        """Ingest ``k`` elements one block each; return all ``k`` sums."""
        array = coerce_stream_block(values, self.shape)
        k = array.shape[0]
        self._check_capacity(k)
        flat = array.reshape(k, self._flat_dim)
        releases = np.empty((k, self._flat_dim))
        for r in range(k):
            self._ingest_total(flat[r])
            self.steps_taken += 1
            releases[r] = self._sum
        return releases.reshape((k,) + self.shape)

    def advance_batch(self, values: np.ndarray) -> np.ndarray:
        """Ingest a block (one noise draw); release only the final sum."""
        array = coerce_stream_block(values, self.shape)
        k = array.shape[0]
        self._check_capacity(k)
        self._ingest_total(array.reshape(k, self._flat_dim).sum(axis=0))
        self.steps_taken += k
        return self.current_sum()

    def advance_sum(self, total: np.ndarray | float, count: int) -> np.ndarray:
        """Ingest a pre-reduced block total of ``count`` elements."""
        total_flat = coerce_stream_element(total, self.shape)
        count = check_int("count", count, minimum=1)
        self._check_capacity(count)
        self._ingest_total(total_flat.reshape(self._flat_dim))
        self.steps_taken += count
        return self.current_sum()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def current_sum(self) -> np.ndarray:
        """The latest noisy sum (post-processing, free)."""
        return self._sum.reshape(self.shape).copy()

    def release_noise_variance(self) -> float:
        """Per-coordinate variance of the current release: ``draws·σ²``."""
        return float(self.noise_draws) * self.sigma_block**2

    def released_moments(self):
        """Snapshot the current release (picklable wire format)."""
        return _snapshot_released(self)

    @property
    def effective_weight(self) -> float:
        """Total weight of the covered elements — the raw count."""
        return float(self.steps_taken)

    def error_bound(self, beta: float = 0.05) -> float:
        """High-probability error radius at the capacity draw count.

        A configuration constant (like the tree's horizon-based bound):
        the worst case is one block per element — ``horizon`` independent
        draws — giving total scale ``σ_block·√T`` and radius
        ``σ_block·√T·(√d + √(2 ln(1/β)))``.  Callers that ingest in
        blocks of ``B`` enjoy a ``√B`` smaller radius; this bound never
        understates.
        """
        sigma_total = self.sigma_block * math.sqrt(self.horizon)
        return sigma_total * (
            math.sqrt(self._flat_dim) + math.sqrt(2.0 * math.log(1.0 / beta))
        )

    def error_bound_spectral(self, beta: float = 0.05) -> float:
        """Spectral-norm error radius (square-matrix streams only)."""
        if len(self.shape) != 2 or self.shape[0] != self.shape[1]:
            raise ValidationError(
                f"spectral error bound needs a square matrix shape, got {self.shape}"
            )
        entry_sigma = self.sigma_block * math.sqrt(self.horizon)
        return entry_sigma * (
            2.0 * math.sqrt(self.shape[0])
            + math.sqrt(2.0 * math.log(1.0 / beta))
        )

    def memory_floats(self) -> int:
        """Floats held: one running sum — no tree, no ring."""
        return self._flat_dim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SketchNoiseMechanism(horizon={self.horizon}, shape={self.shape}, "
            f"params={self.params}, sigma_block={self.sigma_block:.4g}, "
            f"draws={self.noise_draws}, steps={self.steps_taken})"
        )


def make_release_mechanism(
    *,
    shape: tuple[int, ...],
    l2_sensitivity: float,
    params: PrivacyParams,
    rng: np.random.Generator | int | None = None,
    mechanism: str = "tree",
    horizon: int | None = None,
    decay: float | None = None,
    window: int | float | None = None,
) -> "ReleaseMechanism":
    """Build the release mechanism a moment layer's knobs select.

    The single construction point behind every estimator and serving
    shard: ``mechanism`` picks the base family (``"tree"`` and
    ``"sketch"`` need ``horizon``; ``"hybrid"`` is horizon-free),
    ``decay`` switches to exponential forgetting (γ-weighted tree nodes,
    or a decayed hybrid), and ``window`` switches to hard expiry (a ring
    of chunk sub-trees — horizon-free when finite).  ``decay`` and
    ``window`` are mutually exclusive; both default to ``None`` (the
    plain paper mechanisms).  ``mechanism="sketch"`` (per-block
    sketch-side noise) supports neither knob — there are no node
    subtotals to fade and no sub-trees to expire — and refuses them with
    the knob named.  Knob validation happens up front with the knob
    named (:func:`~repro._validation.check_release_knobs`), never deep
    in tree code.
    """
    decay, window = check_release_knobs(decay, window)
    if mechanism not in ("tree", "hybrid", "sketch"):
        raise ValidationError(
            f"mechanism must be 'tree', 'hybrid' or 'sketch', got {mechanism!r}"
        )
    if mechanism == "sketch":
        if decay is not None:
            raise ValidationError(
                "decay is not supported with mechanism='sketch': per-block "
                "sketch noise keeps no node subtotals to fade; use the "
                "tree/hybrid families for decayed streams"
            )
        if window is not None:
            raise ValidationError(
                "window is not supported with mechanism='sketch': per-block "
                "sketch noise cannot expire elements; use window= with "
                "mechanism='tree'"
            )
        if horizon is None:
            raise ValidationError("mechanism='sketch' requires a horizon")
        return SketchNoiseMechanism(
            horizon=horizon,
            shape=shape,
            l2_sensitivity=l2_sensitivity,
            params=params,
            rng=rng,
        )
    if window is not None:
        # The window ring replaces both base families: finite windows are
        # horizon-free by construction, inf needs the tree's horizon.
        return SlidingWindowMechanism(
            window=window,
            shape=shape,
            l2_sensitivity=l2_sensitivity,
            params=params,
            rng=rng,
            horizon=horizon,
        )
    if mechanism == "hybrid":
        from .hybrid import HybridMechanism

        return HybridMechanism(
            shape=shape,
            l2_sensitivity=l2_sensitivity,
            params=params,
            rng=rng,
            decay=1.0 if decay is None else decay,
        )
    if horizon is None:
        raise ValidationError("mechanism='tree' requires a horizon")
    if decay is not None:
        return DecayedTreeMechanism(
            horizon=horizon,
            shape=shape,
            l2_sensitivity=l2_sensitivity,
            params=params,
            rng=rng,
            decay=decay,
        )
    return TreeMechanism(
        horizon=horizon,
        shape=shape,
        l2_sensitivity=l2_sensitivity,
        params=params,
        rng=rng,
    )
