"""The regression stream data model.

A :class:`RegressionStream` is an immutable, validated container for a
length-``T`` sequence of covariate-response pairs obeying the paper's
normalization: ``‖x_t‖ ≤ 1`` and ``|y_t| ≤ 1`` for every ``t``.  Every
privacy calibration in the library (tree sensitivities, SGD noise) is
derived from these bounds, so the constructor enforces them rather than
trusting callers — a :class:`~repro.exceptions.DomainViolationError` at
construction beats a silent privacy violation at release time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..exceptions import DomainViolationError

__all__ = ["RegressionStream"]


@dataclass(frozen=True)
class RegressionStream:
    """An ordered stream of ``(x_t, y_t)`` pairs with unit-ball normalization.

    Parameters
    ----------
    xs:
        Covariates, shape ``(T, d)``, each row with ``‖x_t‖₂ ≤ 1``.
    ys:
        Responses, shape ``(T,)``, each with ``|y_t| ≤ 1``.
    theta_star:
        Optional ground-truth parameter (synthetic streams record it so
        examples can report parameter recovery; never used by mechanisms).

    Examples
    --------
    >>> stream = RegressionStream(np.eye(3) * 0.5, np.array([0.1, 0.2, 0.3]))
    >>> stream.length, stream.dim
    (3, 3)
    """

    xs: np.ndarray
    ys: np.ndarray
    theta_star: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        xs = np.asarray(self.xs, dtype=float)
        ys = np.asarray(self.ys, dtype=float)
        if xs.ndim != 2:
            raise DomainViolationError(f"xs must be 2-D (T, d), got shape {xs.shape}")
        if ys.shape != (xs.shape[0],):
            raise DomainViolationError(
                f"ys must have shape ({xs.shape[0]},), got {ys.shape}"
            )
        if not (np.all(np.isfinite(xs)) and np.all(np.isfinite(ys))):
            raise DomainViolationError("stream entries must be finite")
        norms = np.linalg.norm(xs, axis=1)
        tolerance = 1e-9
        if np.any(norms > 1.0 + tolerance):
            worst = float(norms.max())
            raise DomainViolationError(
                f"covariate norm {worst:.6f} exceeds the unit-ball normalization; "
                "rescale the stream (the privacy calibration assumes ‖x‖ ≤ 1)"
            )
        if np.any(np.abs(ys) > 1.0 + tolerance):
            worst = float(np.abs(ys).max())
            raise DomainViolationError(
                f"response magnitude {worst:.6f} exceeds 1; rescale the stream "
                "(the privacy calibration assumes |y| ≤ 1)"
            )
        object.__setattr__(self, "xs", xs)
        object.__setattr__(self, "ys", ys)
        if self.theta_star is not None:
            object.__setattr__(
                self, "theta_star", np.asarray(self.theta_star, dtype=float)
            )

    @property
    def length(self) -> int:
        """The stream length ``T``."""
        return self.xs.shape[0]

    @property
    def dim(self) -> int:
        """The covariate dimension ``d``."""
        return self.xs.shape[1]

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[tuple[np.ndarray, float]]:
        """Yield ``(x_t, y_t)`` pairs in stream order."""
        for t in range(self.length):
            yield self.xs[t], float(self.ys[t])

    def prefix(self, t: int) -> "RegressionStream":
        """The stream prefix ``Γ_t`` of length ``t`` (paper's notation)."""
        if not 0 <= t <= self.length:
            raise ValueError(f"prefix length must be in [0, {self.length}], got {t}")
        return RegressionStream(self.xs[:t].copy(), self.ys[:t].copy(), self.theta_star)

    @staticmethod
    def normalized(
        xs: np.ndarray, ys: np.ndarray, theta_star: np.ndarray | None = None
    ) -> "RegressionStream":
        """Build a stream after rescaling data into the unit domains.

        Covariates are divided by the max row norm and responses by the max
        magnitude (when those exceed 1).  Returns the valid stream; callers
        who care about the scale factors can recompute them from the data.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        x_scale = float(np.linalg.norm(xs, axis=1).max(initial=0.0))
        y_scale = float(np.abs(ys).max(initial=0.0))
        if x_scale > 1.0:
            xs = xs / x_scale
        if y_scale > 1.0:
            ys = ys / y_scale
        return RegressionStream(xs, ys, theta_star)
