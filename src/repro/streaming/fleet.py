"""The fleet runner: many replicated incremental runs, executed concurrently.

Every empirical claim in the paper-vs-measured tables is a Monte-Carlo
statement — an excess-risk curve averaged over seeds, an ordering checked
across replicates.  The :class:`~repro.streaming.runner.IncrementalRunner`
measures *one* (estimator, stream, seed) cell; the :class:`FleetRunner`
executes a whole grid of such cells, optionally across a process pool, and
aggregates the traces.

Seed discipline
---------------
Each replicate owns a :class:`numpy.random.SeedSequence` derived from its
integer seed; the sequence is split into one child generator for the stream
factory and one for the estimator factory.  The execution backend is
therefore irrelevant to the results: a replicate produces bit-identical
output whether it runs inline, in a thread of the parent, or in a worker
process — which is also what the fleet tests assert.

Read discipline
---------------
Replicates whose estimator is a serving front (anything exposing
``reader()``, e.g. :class:`~repro.streaming.serving.ShardedStream`) are
read through a per-run
:class:`~repro.streaming.readers.ReaderHandle` acquired by each
replicate's :class:`~repro.streaming.runner.IncrementalRunner` — fleet
measurements therefore exercise the same lock-free snapshot read path a
production reader uses, and the handle is retired when the replicate
finishes.

Pickling
--------
Process-pool execution requires every :class:`ReplicateSpec` field to be
picklable.  Use module-level factory functions or :func:`functools.partial`
over module-level callables (closures and lambdas only work with
``workers=0`` inline execution).  The serving layer's process transport
(:mod:`repro.streaming.transport`) follows the same spec-plumbing pattern:
a frozen picklable recipe (:class:`~repro.streaming.transport.ShardSpec`)
crosses the process boundary and the worker rebuilds its objects from it —
never the live objects themselves.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .._validation import check_int
from ..exceptions import FleetExecutionError, ValidationError
from ..geometry.base import ConvexSet
from .runner import IncrementalRunner, RunResult
from .stream import RegressionStream

__all__ = ["FleetRunner", "ReplicateSpec", "ReplicateResult", "FleetResult"]


@dataclass(frozen=True)
class ReplicateSpec:
    """One (estimator, stream, seed) cell of a fleet.

    Attributes
    ----------
    name:
        Label grouping replicates in the aggregate (e.g. the estimator
        name); replicates sharing a name are averaged together.
    estimator_factory:
        ``rng ↦ estimator`` — builds a fresh estimator from the
        replicate's estimator generator.
    stream_factory:
        ``rng ↦ RegressionStream`` — builds the replicate's stream from
        the replicate's stream generator.  Pass a constant function (e.g.
        ``functools.partial`` discarding the rng) to reuse a fixed stream.
    seed:
        Root seed of the replicate's :class:`numpy.random.SeedSequence`.
    """

    name: str
    estimator_factory: Callable[[np.random.Generator], Any]
    stream_factory: Callable[[np.random.Generator], RegressionStream]
    seed: int


@dataclass
class ReplicateResult:
    """Outcome of one replicate: the spec identity plus its scored run."""

    name: str
    seed: int
    result: RunResult

    def summary(self) -> dict[str, float]:
        """The replicate's trace summary (max/final/mean excess, OPT)."""
        return self.result.trace.summary()


@dataclass
class FleetResult:
    """All replicate results of one fleet execution."""

    replicates: list[ReplicateResult] = field(default_factory=list)

    def by_name(self) -> dict[str, list[ReplicateResult]]:
        """Replicates grouped by spec name, preserving submission order."""
        groups: dict[str, list[ReplicateResult]] = {}
        for replicate in self.replicates:
            groups.setdefault(replicate.name, []).append(replicate)
        return groups

    def mean_summary(self) -> dict[str, dict[str, float]]:
        """Per-name mean of every trace-summary statistic across seeds."""
        aggregated: dict[str, dict[str, float]] = {}
        for name, group in self.by_name().items():
            summaries = [replicate.summary() for replicate in group]
            aggregated[name] = {
                key: float(np.mean([s[key] for s in summaries]))
                for key in summaries[0]
            }
        return aggregated


def _replicate_generators(seed: int) -> tuple[np.random.Generator, np.random.Generator]:
    """The replicate's (stream, estimator) generators — backend-independent."""
    stream_seq, estimator_seq = np.random.SeedSequence(seed).spawn(2)
    return np.random.default_rng(stream_seq), np.random.default_rng(estimator_seq)


def _execute_replicate(
    spec: ReplicateSpec,
    constraint: ConvexSet,
    eval_every: int,
    solver_iterations: int,
    keep_thetas: bool,
    batch_size: int,
) -> ReplicateResult:
    """Run one replicate start to finish (top-level for picklability)."""
    stream_rng, estimator_rng = _replicate_generators(spec.seed)
    stream = spec.stream_factory(stream_rng)
    estimator = spec.estimator_factory(estimator_rng)
    runner = IncrementalRunner(
        constraint,
        eval_every=eval_every,
        solver_iterations=solver_iterations,
        keep_thetas=keep_thetas,
    )
    result = runner.run(estimator, stream, batch_size=batch_size)
    return ReplicateResult(name=spec.name, seed=spec.seed, result=result)


class FleetRunner:
    """Execute a fleet of replicated incremental runs, optionally in parallel.

    Parameters
    ----------
    constraint:
        The constraint set shared by every replicate's measurement.
    eval_every, solver_iterations, keep_thetas:
        Forwarded to each replicate's
        :class:`~repro.streaming.runner.IncrementalRunner`.
    batch_size:
        Block size for each replicate's run (the batched engine); 1 is the
        point-by-point protocol.
    workers:
        Process-pool width.  ``0`` or ``1`` executes inline (no pool, no
        pickling requirements); ``None`` uses ``os.cpu_count()`` capped by
        the number of specs.

    Examples
    --------
    >>> import functools
    >>> from repro import L2Ball, StaticOutput
    >>> from repro.data import make_dense_stream
    >>> ball = L2Ball(3)
    >>> spec = ReplicateSpec(
    ...     name="static",
    ...     estimator_factory=functools.partial(_static_estimator, dim=3),
    ...     stream_factory=functools.partial(_dense_stream, length=8, dim=3),
    ...     seed=0,
    ... )
    >>> fleet = FleetRunner(ball, eval_every=8, workers=0)
    >>> outcome = fleet.run([spec])
    >>> len(outcome.replicates)
    1
    """

    def __init__(
        self,
        constraint: ConvexSet,
        eval_every: int = 1,
        solver_iterations: int = 200,
        keep_thetas: bool = False,
        batch_size: int = 1,
        workers: int | None = None,
    ) -> None:
        self.constraint = constraint
        self.eval_every = check_int("eval_every", eval_every, minimum=1)
        self.solver_iterations = check_int("solver_iterations", solver_iterations, minimum=1)
        self.keep_thetas = bool(keep_thetas)
        self.batch_size = check_int("batch_size", batch_size, minimum=1)
        if workers is not None:
            workers = check_int("workers", workers, minimum=0)
        self.workers = workers

    def run(self, specs: Sequence[ReplicateSpec]) -> FleetResult:
        """Execute every spec; return the results in submission order.

        Raises
        ------
        FleetExecutionError
            If any replicate fails, regardless of backend.  The error
            names the failing cell and carries its spec as ``.spec``, and
            chains the worker's original exception — instead of the bare
            pool traceback a raw ``future.result()`` would surface.
        """
        specs = list(specs)
        if not specs:
            raise ValidationError("fleet must contain at least one replicate spec")
        workers = self.workers
        if workers is None:
            workers = min(os.cpu_count() or 1, len(specs))
        if workers <= 1:
            replicates = [
                self._guarded(spec, lambda s=spec: self._execute(s)) for spec in specs
            ]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _execute_replicate,
                        spec,
                        self.constraint,
                        self.eval_every,
                        self.solver_iterations,
                        self.keep_thetas,
                        self.batch_size,
                    )
                    for spec in specs
                ]
                replicates = [
                    self._guarded(spec, future.result)
                    for spec, future in zip(specs, futures)
                ]
        return FleetResult(replicates=replicates)

    @staticmethod
    def _guarded(spec: ReplicateSpec, produce: Callable[[], ReplicateResult]) -> ReplicateResult:
        """Run one replicate producer, attaching the spec to any failure."""
        try:
            return produce()
        except FleetExecutionError:
            raise
        except Exception as exc:
            raise FleetExecutionError(
                f"replicate {spec.name!r} (seed {spec.seed}) failed: "
                f"{type(exc).__name__}: {exc}",
                spec=spec,
            ) from exc

    def _execute(self, spec: ReplicateSpec) -> ReplicateResult:
        return _execute_replicate(
            spec,
            self.constraint,
            self.eval_every,
            self.solver_iterations,
            self.keep_thetas,
            self.batch_size,
        )


def _static_estimator(rng: np.random.Generator, dim: int):
    """Docstring-example helper: the trivially private constant estimator."""
    from ..core.baselines import StaticOutput
    from ..geometry import L2Ball

    return StaticOutput(L2Ball(dim))


def _dense_stream(rng: np.random.Generator, length: int, dim: int) -> RegressionStream:
    """Docstring-example helper: a dense synthetic stream from the rng."""
    from ..data.synthetic import make_dense_stream

    return make_dense_stream(length, dim, rng=rng)
