"""Metric containers for incremental runs.

:class:`ExcessRiskTrace` records, per evaluated timestep, the private
estimator's risk and the exact minimum risk, exposing the Definition-1
quantity ``max_t [J(θ_t; Γ_t) − J(θ̂_t; Γ_t)]`` plus the summaries the
benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ExcessRiskTrace"]


@dataclass
class ExcessRiskTrace:
    """Per-timestep risk trajectory of an incremental estimator.

    Attributes
    ----------
    timesteps:
        The evaluated ``t`` values (ascending).
    estimator_risk:
        ``J(θ_t; Γ_t)`` at each evaluated ``t``.
    optimal_risk:
        ``J(θ̂_t; Γ_t)`` (exact constrained minimum) at each evaluated ``t``.
    """

    timesteps: list[int] = field(default_factory=list)
    estimator_risk: list[float] = field(default_factory=list)
    optimal_risk: list[float] = field(default_factory=list)

    def record(self, t: int, estimator_risk: float, optimal_risk: float) -> None:
        """Append one evaluation point (clamping tiny negative excess to 0)."""
        self.timesteps.append(int(t))
        self.estimator_risk.append(float(estimator_risk))
        self.optimal_risk.append(float(optimal_risk))

    @property
    def excess(self) -> np.ndarray:
        """Per-step excess risk, floored at zero against solver noise."""
        est = np.asarray(self.estimator_risk)
        opt = np.asarray(self.optimal_risk)
        return np.maximum(est - opt, 0.0)

    def max_excess(self) -> float:
        """Definition 1's ``α``: the worst excess risk over the stream."""
        if not self.timesteps:
            return 0.0
        return float(self.excess.max())

    def final_excess(self) -> float:
        """Excess risk at the last evaluated timestep."""
        if not self.timesteps:
            return 0.0
        return float(self.excess[-1])

    def mean_excess(self) -> float:
        """Average excess risk across evaluated timesteps."""
        if not self.timesteps:
            return 0.0
        return float(self.excess.mean())

    def final_optimal_risk(self) -> float:
        """``OPT`` — the minimum empirical risk at the last timestep."""
        if not self.optimal_risk:
            return 0.0
        return float(self.optimal_risk[-1])

    def summary(self) -> dict[str, float]:
        """The dictionary benchmarks attach as ``extra_info``."""
        return {
            "max_excess": self.max_excess(),
            "final_excess": self.final_excess(),
            "mean_excess": self.mean_excess(),
            "final_opt": self.final_optimal_risk(),
        }
