"""Metric containers for incremental runs and the serving read path.

:class:`ExcessRiskTrace` records, per evaluated timestep, the private
estimator's risk and the exact minimum risk, exposing the Definition-1
quantity ``max_t [J(θ_t; Γ_t) − J(θ̂_t; Γ_t)]`` plus the summaries the
benchmarks print.

:class:`ReadStats` is the serving layer's read-side counterpart: one
immutable, internally consistent snapshot of the estimate fan-out —
publisher-side version/write counts taken under the cache's writer lock,
reader-side counts aggregated **on demand** from the per-reader handles
(:mod:`repro.streaming.readers`).  Nothing on the lock-free read hot path
ever mutates shared statistics; this snapshot is how they are observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ExcessRiskTrace", "ReadStats"]


@dataclass(frozen=True)
class ReadStats:
    """A consistent point-in-time snapshot of estimate fan-out statistics.

    Attributes
    ----------
    version:
        The cache's published version at snapshot time (−1 when empty).
    writes:
        Completed publishes (idempotent republishes excluded).
    readers:
        Reader handles currently registered (closed or garbage-collected
        handles excluded; their counts are folded into the totals below
        exactly once, by the handle's finalizer).
    reads:
        Total reads across all handles, live and retired.
    snapshot_hits:
        Reads answered from a handle's local snapshot via the version
        fast path — no fresh cache dereference beyond the version check.
    """

    version: int
    writes: int
    readers: int
    reads: int
    snapshot_hits: int

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served by the per-reader snapshot fast path."""
        if self.reads == 0:
            return 0.0
        return self.snapshot_hits / self.reads


@dataclass
class ExcessRiskTrace:
    """Per-timestep risk trajectory of an incremental estimator.

    Attributes
    ----------
    timesteps:
        The evaluated ``t`` values (ascending).
    estimator_risk:
        ``J(θ_t; Γ_t)`` at each evaluated ``t``.
    optimal_risk:
        ``J(θ̂_t; Γ_t)`` (exact constrained minimum) at each evaluated ``t``.
    """

    timesteps: list[int] = field(default_factory=list)
    estimator_risk: list[float] = field(default_factory=list)
    optimal_risk: list[float] = field(default_factory=list)

    def record(self, t: int, estimator_risk: float, optimal_risk: float) -> None:
        """Append one evaluation point (clamping tiny negative excess to 0)."""
        self.timesteps.append(int(t))
        self.estimator_risk.append(float(estimator_risk))
        self.optimal_risk.append(float(optimal_risk))

    @property
    def excess(self) -> np.ndarray:
        """Per-step excess risk, floored at zero against solver noise."""
        est = np.asarray(self.estimator_risk)
        opt = np.asarray(self.optimal_risk)
        return np.maximum(est - opt, 0.0)

    def max_excess(self) -> float:
        """Definition 1's ``α``: the worst excess risk over the stream."""
        if not self.timesteps:
            return 0.0
        return float(self.excess.max())

    def final_excess(self) -> float:
        """Excess risk at the last evaluated timestep."""
        if not self.timesteps:
            return 0.0
        return float(self.excess[-1])

    def mean_excess(self) -> float:
        """Average excess risk across evaluated timesteps."""
        if not self.timesteps:
            return 0.0
        return float(self.excess.mean())

    def final_optimal_risk(self) -> float:
        """``OPT`` — the minimum empirical risk at the last timestep."""
        if not self.optimal_risk:
            return 0.0
        return float(self.optimal_risk[-1])

    def summary(self) -> dict[str, float]:
        """The dictionary benchmarks attach as ``extra_info``."""
        return {
            "max_excess": self.max_excess(),
            "final_excess": self.final_excess(),
            "mean_excess": self.mean_excess(),
            "final_opt": self.final_optimal_risk(),
        }
