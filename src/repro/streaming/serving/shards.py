"""Shard worker backends: thin moment-bundle declarations.

Every shard class here owns a :class:`~repro.streaming.moments.MomentBundle`
— an ordered set of named release mechanisms over its routed sub-stream —
and differs only in *which* statistics it declares and how raw covariate
blocks are transformed into the rows the statistics are built from:

* :class:`MomentShard` — the default two-entry (cross, gram) bundle in
  the raw space (Algorithm 2's backend);
* :class:`ProjectedMomentShard` / :class:`SketchShard` — the same bundle
  over Step-4 rescaled ``Φx̃`` rows (Algorithm 3 / the sketch-noise
  variant);
* :class:`IVMomentShard` — the three-entry (zz, zx, zy) bundle of private
  two-stage least squares over stacked ``[z | x]`` rows;
* :class:`TenantShard` — the PRIMO backend: a dynamic per-tenant cross
  dict plus per-γ-group shared Grams (its slot structure is mutable at
  runtime, so it keeps its own mechanism bookkeeping rather than a frozen
  bundle declaration).

The default bundle is built with the same factory arguments, rng children,
and float expressions as the historical inline (cross, gram) pair, so the
bundle refactor is bit-identical under one seed on every transport.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_int, check_release_knobs
from ...core.incremental_regression import MOMENT_SENSITIVITY
from ...exceptions import (
    BundlePartialCommitError,
    PrivacyBudgetError,
    ValidationError,
)
from ...privacy.parameters import PrivacyParams, bundle_budgets, tenant_budgets
from ...privacy.release import make_release_mechanism
from ...sketching.gaussian import step4_rescale_block
from ..moments import (
    MomentBundle,
    cross_statistic,
    gram_statistic,
    iv_statistics,
)
from .validation import _check_decay_groups

__all__ = [
    "IVMomentShard",
    "MomentShard",
    "ProjectedMomentShard",
    "SketchShard",
    "TenantShard",
]


class MomentShard:
    """One shard worker: an independent moment bundle over a sub-stream.

    Declares the default two-entry bundle — a cross-moment mechanism
    (element shape ``(moment_dim,)``) and a second-moment mechanism
    (``(moment_dim, moment_dim)``), each at half the shard's budget —
    exactly the split Algorithms 2 and 3 apply to their two trees.

    This is the *pluggable shard backend* of the serving front: the
    moment-ingestion contract lives here once —

    * ``ingest`` maps the routed covariate block through :meth:`_transform`
      into the ``(k, moment_dim)`` rows the moment streams are built from,
      then advances the bundle (``advance_batch`` exact tier, or one BLAS
      block total per statistic + ``advance_sum`` fast tier);
    * subclasses choose the space and the statistics.  The base class is
      Algorithm 2's backend (``moment_dim = d``, identity transform);
      :class:`ProjectedMomentShard` is Algorithm 3's (``moment_dim = m``,
      Step-4 rescaled ``Φx̃`` rows through a *shared* ``Φ``);
      :class:`IVMomentShard` swaps in the three-entry IV bundle.

    Sensitivity is Δ₂ = 2 in every case (the unit domain for raw moments;
    the Step-4 rescaling for projected ones), so the budget split, the
    noise calibration, and the merge rule are backend-agnostic.
    """

    #: Class-level backend tag (subclasses override).
    backend = "moment"

    #: Release-mechanism family the moment streams are built with.
    #: ``None`` defers to the ``mechanism`` ctor knob; subclasses may pin
    #: a family (the sketch backend pins ``"sketch"``) while the
    #: user-facing ``mechanism`` knob and the wire spec keep their value.
    release_family: str | None = None

    def __init__(
        self,
        index: int,
        dim: int,
        budget: PrivacyParams,
        cross_rng: np.random.Generator = None,
        gram_rng: np.random.Generator = None,
        mechanism: str = "tree",
        shard_horizon: int | None = None,
        moment_dim: int | None = None,
        decay: float | None = None,
        window: int | float | None = None,
        rngs=None,
    ) -> None:
        self.index = index
        self.dim = dim
        self.moment_dim = dim if moment_dim is None else moment_dim
        self.budget = budget
        self.mechanism = mechanism
        self.shard_horizon = shard_horizon
        self.decay, self.window = check_release_knobs(decay, window)
        self.steps = 0
        self.alive = True
        #: Set once the front has credited this worker's ingested mass to
        #: its ``lost_steps`` ledger (see ShardedStream._note_shard_death).
        self.lost_accounted = False
        if rngs is None:
            rngs = (cross_rng, gram_rng)
        self._build_bundle(tuple(rngs))

    def _statistics(self):
        """The bundle this backend declares (subclass hook), in order."""
        m = self.moment_dim
        return (cross_statistic(m), gram_statistic(m))

    def _build_bundle(self, rngs) -> None:
        """One factory call per declared statistic, through the bundle.

        ``mechanism``/``decay``/``window`` select among Tree, Hybrid,
        DecayedTree, SlidingWindow and SketchNoise implementations of the
        ReleaseMechanism protocol; the default two-entry bundle at equal
        budget weights is bit-identical to the historical inline
        (cross, gram) construction (same ctor arguments, same rngs, and
        ``bundle_budgets`` reproduces ``budget.halve()`` bit-exactly).
        """
        statistics = self._statistics()
        budgets = bundle_budgets(
            self.budget, tuple(stat.budget_weight for stat in statistics)
        )
        family = self.release_family or self.mechanism
        self.bundle = MomentBundle(
            statistics,
            budgets,
            rngs,
            mechanism=family,
            horizon=self.shard_horizon,
            decay=self.decay,
            window=self.window,
            l2_sensitivity=MOMENT_SENSITIVITY,
        )

    @property
    def cross(self):
        """The cross-moment mechanism (``None`` once killed; diagnostics)."""
        return self.bundle.get("cross")

    @property
    def gram(self):
        """The second-moment mechanism (``None`` once killed; diagnostics)."""
        return self.bundle.get("gram")

    def _transform(self, xs: np.ndarray) -> np.ndarray:
        """Rows the moment streams are built from (identity for Alg. 2)."""
        return xs

    def ingest(self, xs: np.ndarray, ys: np.ndarray, fast: bool) -> None:
        """Feed a routed block to the moment bundle.

        Every bundle input is materialized *before* any mechanism
        advances: with the block pre-validated (finite, unit-normalized)
        and the mechanisms in step-lockstep, every failure the library can
        raise (validation, capacity) then happens before anything mutates
        — the no-consumption guarantee ``_process_block``'s capacity
        refund relies on.  If a later bundle entry nevertheless fails
        after an earlier one committed, the bundle is torn: this shard
        marks itself dead and the
        :class:`~repro.exceptions.BundlePartialCommitError` (a
        ``ShardUnavailableError``) folds it into the partial-coverage
        fault path, with only the fully committed blocks counted into
        ``steps`` (and hence ``lost_steps``).
        """
        rows = self._transform(xs)
        k = rows.shape[0]
        try:
            self.bundle.ingest(rows, ys, fast)
        except BundlePartialCommitError:
            self.alive = False
            raise
        self.steps += k

    def released(self):
        """The bundle's merge handles for :func:`~repro.privacy.tree.merge_released`.

        One handle per declared statistic, in bundle order — ``(cross,
        gram)`` for the default backend.  The transport seam of the merge
        path: in-process shards hand over their **live** mechanisms
        (zero-copy — the merge reads ``current_sum()`` directly), while
        :class:`~repro.streaming.transport.ProcessShardWorker` overrides
        the same method to fetch picklable
        :class:`~repro.privacy.tree.ReleasedMoments` snapshots over its
        pipe.  ``merge_released`` accepts both interchangeably.
        """
        return self.bundle.released()

    def memory_floats(self) -> int:
        """Floats held by this shard's mechanisms (0 once killed).

        ``O(moment_dim² log T)`` per shard — the Algorithm-3 backend's
        whole point: ``m² log T`` instead of ``d² log T``.
        """
        if not self.alive:
            return 0
        return self.bundle.memory_floats()

    def kill(self) -> None:
        """Drop the mechanisms; the shard's ingested mass is lost."""
        self.alive = False
        self.bundle.kill()

    def shutdown(self) -> None:
        """Transport-uniform teardown hook (nothing to release in-process)."""


class ProjectedMomentShard(MomentShard):
    """Algorithm 3's shard backend: projected moments through a shared ``Φ``.

    Workers ingest ``Φx̃·y`` (``(m,)``) and ``(Φx̃)(Φx̃)ᵀ`` (``(m, m)``)
    where ``x̃`` is the Step-4 rescaled covariate — computed through the
    *same* :func:`~repro.sketching.gaussian.step4_rescale_block` helper
    ``PrivIncReg2.observe_batch`` uses, against a single projection drawn
    once by the serving front and shared by every shard (and by the
    solver, whose ``refresh_from_released`` then receives merged moments
    living in the one projected space).  Because the rescaling pins the
    projected sensitivity at Δ₂ = 2 for *any* fixed ``Φ``, the per-shard
    noise calibration and the noise-preserving merge rule carry over from
    the Algorithm-2 backend verbatim.

    The projection is shared state but strictly read-only after
    construction, so thread-parallel group ingestion across shards needs
    no synchronization around it.
    """

    backend = "projected"

    def __init__(
        self,
        index: int,
        dim: int,
        budget: PrivacyParams,
        cross_rng: np.random.Generator,
        gram_rng: np.random.Generator,
        projection,
        mechanism: str = "tree",
        shard_horizon: int | None = None,
        decay: float | None = None,
        window: int | float | None = None,
    ) -> None:
        # The projection must be set before the base constructor builds
        # the bundle (the bundle shapes come from projected_dim).
        self.projection = projection
        super().__init__(
            index=index,
            dim=dim,
            budget=budget,
            cross_rng=cross_rng,
            gram_rng=gram_rng,
            mechanism=mechanism,
            shard_horizon=shard_horizon,
            moment_dim=projection.projected_dim,
            decay=decay,
            window=window,
        )

    def _transform(self, xs: np.ndarray) -> np.ndarray:
        return step4_rescale_block(self.projection, xs)


class SketchShard(ProjectedMomentShard):
    """The sketch-native shard backend: privatize the sketch, not the moments.

    The ingest geometry is :class:`ProjectedMomentShard`'s — Step-4
    rescaled rows through a *shared* projection — but the projection is a
    **sparse-JL** ``Φ`` (:class:`~repro.sketching.sparse_jl.SparseProjection`,
    the paper's footnote 16: ``~1/s`` of the entries non-zero, so the
    per-block pass costs ``O(nnz)`` instead of the dense BLAS product),
    and the noise source is not a tree at all: both moment streams run
    :class:`~repro.privacy.release.SketchNoiseMechanism`, which keeps the
    exact sketched running sums and adds **one Gaussian draw per ingested
    block** at the Step-4-pinned sensitivity (the *Private Sketches for
    Linear Regression* release model).  Because the Step-4 rescale pins
    Δ₂ = 2 for any fixed ``Φ``, the budget split, calibration, and the
    noise-preserving merge rule carry over verbatim; released snapshots
    are ordinary :class:`~repro.privacy.tree.ReleasedMoments`, so the
    merge, solver refresh, read path, and partial-coverage accounting
    upstream never notice the backend.

    The user-facing ``mechanism`` knob stays ``"tree"`` (and rides the
    wire spec unchanged); the sketch family is pinned here via
    :attr:`release_family` so every transport builds the same mechanisms.
    """

    backend = "sketch"

    release_family = "sketch"


class IVMomentShard(MomentShard):
    """The instrumental-variable shard backend: the (zz, zx, zy) bundle.

    Rows are stacked ``[z | x]`` blocks of width ``instruments + dim``
    (the front validates ``‖z‖ ≤ 1, ‖x‖ ≤ 1, |y| ≤ 1`` separately, so
    every statistic's per-element sensitivity stays at the shared
    Δ₂ = 2); the bundle carries the three moment streams two-stage least
    squares consumes — ``ZᵀZ`` (``(p, p)``), ``ZᵀX`` (``(p, d)``) and
    ``Zᵀy`` (``(p,)``) — each behind its own tree at a third of the shard
    budget (:func:`~repro.privacy.parameters.bundle_budgets` at equal
    weights, exact thirds).  The merge rule, fault semantics, and
    transports are untouched: a bundle is a bundle, just three entries
    instead of two.  :class:`~repro.core.priv_inc_iv.PrivIncIV` solves
    against the merged bundle via ``refresh_from_bundle``.
    """

    backend = "iv"

    def __init__(
        self,
        index: int,
        dim: int,
        budget: PrivacyParams,
        rngs,
        instruments: int,
        mechanism: str = "tree",
        shard_horizon: int | None = None,
        decay: float | None = None,
        window: int | float | None = None,
    ) -> None:
        # Needed by _statistics before the base constructor runs.
        self.instruments = check_int("instruments", instruments, minimum=1)
        super().__init__(
            index=index,
            dim=dim,
            budget=budget,
            mechanism=mechanism,
            shard_horizon=shard_horizon,
            decay=decay,
            window=window,
            rngs=tuple(rngs),
        )

    def _statistics(self):
        return iv_statistics(self.instruments, self.dim)


class TenantShard:
    """One multi-tenant shard: a **shared** Gram tree + per-tenant cross trees.

    The PRIMO shard backend (*Private Regression in Multiple Outcomes*):
    when ``k`` outcome streams share one covariate stream, the expensive
    ``(d, d)`` second-moment statistic is identical for every tenant, so
    this shard privatizes it **once** — one Gram tree at ``(ε/2, δ/2)``,
    independent of the tenant count — and keeps only a cheap ``(d,)``
    cross tree per tenant, each at a ``(ε/(2·cap), δ/(2·cap))`` slot of
    the other half (:func:`~repro.privacy.parameters.tenant_budgets`).
    Ingesting ``(x, y_1..y_k)`` advances the Gram tree exactly once and
    tenant ``j``'s cross tree with ``x·y_j``, so the per-element privacy
    loss is at most ``ε/2 + cap·ε/(2·cap) = ε`` — the same total budget a
    single-tenant shard spends, now serving ``k`` models.

    Its statistic set is *mutable at runtime* (tenants come and go), so
    unlike the other backends it keeps its own mechanism dicts rather
    than a frozen bundle declaration; the bundle contract it honors is
    the ``released()`` seam — ordered handle tuples the merge path
    consumes — and the block-atomic ingest ordering.

    Tenants are dynamic: :meth:`add_tenant` occupies a free capacity slot
    with a fresh cross tree, :meth:`remove_tenant` retires one.  Slot
    reuse is sound because a removed tenant's tree never ingests again —
    no stream element is ever seen by two occupants of one slot, so the
    per-element bound above survives any add/remove schedule.

    For a single tenant both budget pieces equal ``budget.halve()``
    bit-exactly and the ingest arithmetic reduces to
    :class:`MomentShard`'s, which is what makes a ``k = 1`` multi-tenant
    stream bit-identical to the plain sharded path (given the same rng
    children — see :class:`~repro.streaming.tenancy.MultiTenantStream`).
    """

    backend = "tenant"

    def __init__(
        self,
        index: int,
        dim: int,
        budget: PrivacyParams,
        tenant_rngs,
        gram_rng: np.random.Generator,
        tenants,
        tenant_capacity: int | None = None,
        mechanism: str = "tree",
        shard_horizon: int | None = None,
        decays: "tuple[float, ...] | None" = None,
        tenant_decays: "tuple[float, ...] | None" = None,
    ) -> None:
        if mechanism != "tree":
            raise ValidationError(
                "TenantShard requires mechanism='tree' (the PRIMO serving "
                "layer assumes a known horizon)"
            )
        names = tuple(str(name) for name in tenants)
        if len(set(names)) != len(names):
            raise ValidationError(f"tenant names must be unique, got {names!r}")
        if not names:
            raise ValidationError("TenantShard needs at least one tenant")
        tenant_rngs = tuple(tenant_rngs)
        if len(tenant_rngs) != len(names):
            raise ValidationError(
                f"need one rng per tenant: {len(names)} tenants, "
                f"{len(tenant_rngs)} rngs"
            )
        self.decays = _check_decay_groups(decays)
        if tenant_decays is None:
            tenant_decays = tuple(self.decays[0] for _ in names)
        tenant_decays = tuple(float(g) for g in tenant_decays)
        if len(tenant_decays) != len(names):
            raise ValidationError(
                f"need one decay per tenant: {len(names)} tenants, "
                f"{len(tenant_decays)} tenant_decays"
            )
        for g in tenant_decays:
            if g not in self.decays:
                raise ValidationError(
                    f"tenant_decays entry {g!r} is not a declared γ group "
                    f"(decays={self.decays!r}); the shared Gram stream is "
                    f"privatized once per declared group"
                )
        self.index = index
        self.dim = dim
        self.moment_dim = dim
        self.budget = budget
        self.mechanism = mechanism
        self.shard_horizon = shard_horizon
        self.tenant_capacity = check_int(
            "tenant_capacity",
            len(names) if tenant_capacity is None else tenant_capacity,
            minimum=len(names),
        )
        self.steps = 0
        self.alive = True
        self.lost_accounted = False
        gram_budget, slot_budgets = tenant_budgets(budget, self.tenant_capacity)
        #: Every slot carries the same budget; keep one for later adds.
        self._slot_budget = slot_budgets[0]
        #: Tenant → γ group assignment (merges pick the matching Gram).
        self.tenant_decay: dict[str, float] = dict(zip(names, tenant_decays))
        # Cross trees first, then the Gram trees — the same construction
        # order as MomentShard.  Insertion order of this dict is the
        # tenant order every merge indexes by.
        self.cross: dict[str, object] = {}
        for name, rng in zip(names, tenant_rngs):
            self.cross[name] = self._make_tree(
                (dim,), self._slot_budget, rng, self.tenant_decay[name]
            )
        # One shared Gram mechanism per declared γ group, each at an equal
        # split of the gram half (every element enters every group, so the
        # groups compose sequentially — split(1) leaves the single plain
        # group at the historical budget bit-exactly).  Group 0 consumes
        # ``gram_rng`` itself — the exact generator the single-group shard
        # uses — and later groups consume its spawned siblings (spawning
        # advances the spawn counter, never the bit stream).
        group_budgets = gram_budget.split(len(self.decays))
        extra_rngs = (
            tuple(gram_rng.spawn(len(self.decays) - 1))
            if len(self.decays) > 1
            else ()
        )
        group_rngs = (gram_rng,) + extra_rngs
        self.grams: dict[float, object] = {}
        for g, g_budget, g_rng in zip(self.decays, group_budgets, group_rngs):
            self.grams[g] = self._make_tree((dim, dim), g_budget, g_rng, g)

    def _make_tree(self, shape, params, rng, decay: float):
        """One tree-family release mechanism, γ-decayed when ``decay < 1``.

        ``decay == 1.0`` builds the plain :class:`TreeMechanism` (not a
        γ=1 decayed wrapper), so single-group shards stay type- and
        bit-identical to the historical construction.
        """
        return make_release_mechanism(
            shape=shape,
            l2_sensitivity=MOMENT_SENSITIVITY,
            params=params,
            rng=rng,
            mechanism="tree",
            horizon=self.shard_horizon,
            decay=None if decay == 1.0 else decay,
        )

    @property
    def gram(self):
        """The primary (group-0) shared Gram mechanism, or ``None`` if killed.

        Kept for diagnostics and the single-group conformance suites;
        merges index :meth:`released`'s per-group tuple instead.
        """
        if self.grams is None:
            return None
        return self.grams[self.decays[0]]

    def tenants(self) -> tuple[str, ...]:
        """Active tenant names, in the order merges index them."""
        return tuple(self.cross)

    def add_tenant(
        self,
        name: str,
        rng: np.random.Generator,
        decay: float | None = None,
    ) -> None:
        """Occupy a free capacity slot with a fresh cross tree for ``name``.

        ``decay`` assigns the tenant to one of the shard's declared γ
        groups (default: the primary group); its cross tree uses the same
        weighting, so the tenant's merged moments stay consistent.
        """
        name = str(name)
        if name in self.cross:
            raise ValidationError(f"tenant {name!r} already exists")
        if len(self.cross) >= self.tenant_capacity:
            raise PrivacyBudgetError(
                f"all {self.tenant_capacity} tenant slots are occupied; "
                f"remove a tenant before adding {name!r} (the slot budgets "
                f"are what keep the per-element loss within the total)"
            )
        g = self.decays[0] if decay is None else float(decay)
        if g not in self.decays:
            raise ValidationError(
                f"decay {g!r} is not a declared γ group "
                f"(decays={self.decays!r}); groups are fixed at "
                f"construction — the gram budget was split across them"
            )
        self.tenant_decay[name] = g
        self.cross[name] = self._make_tree((self.dim,), self._slot_budget, rng, g)

    def remove_tenant(self, name: str) -> None:
        """Retire ``name``'s cross tree, freeing its capacity slot."""
        if str(name) not in self.cross:
            raise ValidationError(f"unknown tenant {name!r}")
        del self.cross[str(name)]
        del self.tenant_decay[str(name)]

    def ingest(self, xs: np.ndarray, ys: np.ndarray, fast: bool) -> None:
        """Feed a routed block: the Gram tree once, each tenant's cross once.

        ``ys`` is the ``(n, k)`` outcome matrix, one column per active
        tenant in :meth:`tenants` order.  All moment inputs are
        materialized first, and the Gram tree — never behind any cross
        tree in step count, so the first to hit capacity — advances before
        the crosses: any failure the library can raise happens before a
        tree mutates, preserving the block-atomic no-consumption
        guarantee.  Per tree the arithmetic is exactly
        :class:`MomentShard.ingest`'s, so a single tenant's trees stay
        bit-identical to a single-tenant shard's.
        """
        Y = np.asarray(ys, dtype=float)
        if Y.ndim == 1:
            Y = Y[:, None]
        if Y.shape != (xs.shape[0], len(self.cross)):
            raise ValidationError(
                f"outcome block must have shape ({xs.shape[0]}, "
                f"{len(self.cross)}) — one column per active tenant — got "
                f"{Y.shape}"
            )
        k = xs.shape[0]
        if fast:
            # γ-weighted block totals per group — the decayed
            # ``advance_sum`` contract; γ = 1 keeps the plain one-product
            # totals bit-exactly.
            weights = {
                g: g ** np.arange(k - 1, -1, -1, dtype=float)
                for g in self.decays
                if g != 1.0
            }
            gram_totals = []
            for g in self.decays:
                if g == 1.0:
                    gram_totals.append(xs.T @ xs)
                else:
                    gram_totals.append((weights[g][:, None] * xs).T @ xs)
            cross_totals = []
            for j, name in enumerate(self.cross):
                g = self.tenant_decay[name]
                col = Y[:, j] if g == 1.0 else weights[g] * Y[:, j]
                cross_totals.append(col @ xs)
            for mechanism, total in zip(self.grams.values(), gram_totals):
                mechanism.advance_sum(total, k)
            for mechanism, total in zip(self.cross.values(), cross_totals):
                mechanism.advance_sum(total, k)
        else:
            # The decayed mechanisms fade internally, so every γ group
            # (and every tenant tree) ingests the same raw moment values.
            gram_values = xs[:, :, None] * xs[:, None, :]
            cross_values = [Y[:, j, None] * xs for j in range(Y.shape[1])]
            for mechanism in self.grams.values():
                mechanism.advance_batch(gram_values)
            for mechanism, values in zip(self.cross.values(), cross_values):
                mechanism.advance_batch(values)
        self.steps += k

    def released(self):
        """The (per-tenant cross tuple, per-group gram tuple) merge handles.

        Same seam as :meth:`MomentShard.released`, with both slots widened
        to tuples — one cross handle per active tenant in :meth:`tenants`
        order, one Gram handle per declared γ group in ``decays`` order.
        The process transport snapshots each element as a
        :class:`~repro.privacy.tree.ReleasedMoments`, so the wire format
        is unchanged: the same snapshots, just ``k`` (and ``G``) of them.
        """
        return tuple(self.cross.values()), tuple(self.grams.values())

    def memory_floats(self) -> int:
        """Floats held by the shard: ``O((G·d² + k·d) log T)`` — the PRIMO
        economy, vs ``k·O(d² log T)`` for ``k`` independent shards."""
        if not self.alive:
            return 0
        return sum(
            mechanism.memory_floats() for mechanism in self.grams.values()
        ) + sum(mechanism.memory_floats() for mechanism in self.cross.values())

    def kill(self) -> None:
        """Drop the mechanisms; the shard's ingested mass is lost."""
        self.alive = False
        self.cross = None
        self.grams = None

    def shutdown(self) -> None:
        """Transport-uniform teardown hook (nothing to release in-process)."""
