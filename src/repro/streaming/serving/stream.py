"""The serving front: routing, merging, budgeting, caching, async ingestion."""

from __future__ import annotations

import math
import queue
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..._validation import (
    check_int,
    check_release_knobs,
    check_rng,
    check_unit_iv_domain,
    check_unit_xy_domain,
    check_vector,
    check_xy_block,
)
from ...core.incremental_regression import PrivIncReg1
from ...core.priv_inc_iv import PrivIncIV
from ...core.projected_regression import PrivIncReg2, projected_sizing
from ...core.unbounded import UnboundedPrivIncReg
from ...exceptions import (
    GroupIngestionError,
    ServingError,
    ShardUnavailableError,
    StreamExhaustedError,
    ValidationError,
)
from ...geometry.base import ConvexSet, PointSet
from ...privacy.accountant import PrivacyAccountant
from ...privacy.parameters import PrivacyParams, bundle_budgets, shard_budgets
from ...privacy.tree import MergedRelease, merge_released
from ...sketching.gaussian import GaussianProjection
from ...sketching.sparse_jl import SparseProjection
from ..metrics import ReadStats
from ..moments import bundle_names
from ..netserve import ShardAddress, ShardHostListener, TcpShardWorker
from ..transport import ProcessShardWorker, ShardSpec
from ..readers import EstimateHub, ReaderHandle, Subscription
from .cache import ServedEstimate
from .shards import (
    IVMomentShard,
    MomentShard,
    ProjectedMomentShard,
    SketchShard,
)

__all__ = ["ShardedStream", "_CLOSE"]

_CLOSE = object()  # queue sentinel


class ShardedStream:
    """A sharded, optionally asynchronous, algorithm-generic serving front.

    Fronts **Algorithm 2** (``backend="moment"``, the default: raw
    ``d``-dimensional moment shards solved by ``PrivIncReg1``),
    **Algorithm 3** (``backend="projected"``: one Gordon-sized ``Φ`` drawn
    up front, Step-4-rescaled projected moment shards in dimension
    ``m ≪ d``, solved by a ``PrivIncReg2`` sharing that same ``Φ``), the
    **private-sketch** variant (``backend="sketch"``: the same shared
    ``Φ`` geometry but sparse-JL, with per-block sketch-side noise in
    place of tree noise — :class:`SketchShard`), or **private two-stage
    least squares** (``backend="iv"``: shards carry the three-entry
    (ZᵀZ, ZᵀX, Zᵀy) moment bundle over stacked ``[z | x]`` blocks, solved
    by a :class:`~repro.core.priv_inc_iv.PrivIncIV` —
    :class:`IVMomentShard`).  The routing, merge rule, budget ledger,
    cache, async queue, and fault semantics are backend-agnostic — a
    backend is just a *moment bundle declaration*
    (:class:`~repro.streaming.moments.MomentBundle`), and all bundles pin
    their streams' sensitivity at Δ₂ = 2, so the per-statistic
    calibration and the noise-preserving merge carry over unchanged.

    Parameters
    ----------
    constraint:
        The constraint set ``C``; fixes the dimension.
    params:
        The logical stream's total ``(ε, δ)`` budget.
    shards:
        Number of shard workers ``K``.
    horizon:
        Logical stream length ``T``.  Required for ``mechanism="tree"``
        (noise calibration) and for the default known-horizon solver; may
        be ``None`` with ``mechanism="hybrid"``.
    refresh_every:
        Run the merge + PGD refresh whenever the processed count crosses a
        multiple of this (and at the horizon); ``None`` (default)
        refreshes after every processed block.  Post-processing only.
    ingest:
        ``"exact"`` (bit-identical tier) or ``"fast"`` (distributional
        tier, tree shards only) — see the module docstring.
    mechanism:
        ``"tree"`` (known horizon) or ``"hybrid"`` (horizon-free shards).
    decay:
        Optional forgetting factor ``γ ∈ (0, 1]``: every shard's moment
        mechanisms become γ-decayed (tree or hybrid), releases track
        ``Σ γ^{t−i} υ_i``, and refreshes pass the merged effective weight
        ``(1−γ^t)/(1−γ)`` to the solver — recent points dominate the
        served estimate on drifting streams.  ``γ = 1`` is bit-identical
        to the plain front.  Mutually exclusive with ``window``; works
        with both ingest tiers (the fast tier computes γ-weighted block
        totals with one weighted BLAS product).
    window:
        Optional sliding window ``W``: shard mechanisms become chunked
        :class:`~repro.privacy.release.SlidingWindowMechanism` rings that
        hard-expire elements older than ``W`` steps.  Finite windows are
        horizon-free (pair with ``mechanism="hybrid"`` for unbounded
        recency serving) but need ``ingest="exact"`` — pre-reduced fast
        totals cannot be split at expiry boundaries.  ``window=inf`` is
        the degenerate never-expiring ring, bit-identical to the plain
        tree front.  Mutually exclusive with ``decay``.
    composition:
        Budget mode for :func:`~repro.privacy.parameters.shard_budgets`:
        ``"parallel"`` (default — disjoint routing, full budget per shard)
        or ``"basic"`` (``(ε/K, δ/K)`` per shard).
    router:
        ``"round_robin"`` (default) or a callable
        ``(block_index, xs, ys) -> int`` returning a shard index (taken
        mod ``K``; dead shards fall through to the next live one).
    mode:
        ``"sync"`` — process on the caller's thread; ``"async"`` — enqueue
        and return, a daemon worker processes FIFO; ``"manual"`` — enqueue
        and let the caller :meth:`pump` (deterministic interleavings for
        tests).
    transport:
        ``"thread"`` (default) — shard workers share this interpreter;
        ``"process"`` — each shard runs in its own interpreter behind a
        ``multiprocessing`` pipe
        (:class:`~repro.streaming.transport.ProcessShardWorker`);
        ``"tcp"`` — each shard is served by a
        :class:`~repro.streaming.netserve.ShardHostListener` over
        length-prefixed frames
        (:class:`~repro.streaming.netserve.TcpShardWorker`), which is
        how shards run on separate hosts.  Remote transports ship
        released moments back as picklable
        :class:`~repro.privacy.tree.ReleasedMoments` snapshots.  All
        transports build the same mechanisms from the same rng children,
        so the ingest tiers, merge rule, and fault semantics are
        transport-independent (``tests/test_process_serving.py``,
        ``tests/test_tcp_serving.py``); a custom ``projection`` or
        router must be picklable-compatible (the projection ships in the
        spawn payload; the router always runs in the parent).
        Orthogonal to ``mode``.
    request_timeout:
        Deadline in seconds on every shard RPC (remote transports only).
        A worker that misses it is *alive but stuck* — it is killed /
        disconnected and the shard folds into the partial-coverage fault
        path (:class:`~repro.exceptions.ShardTimeoutError`, a
        :class:`~repro.exceptions.ShardUnavailableError`), exactly as if
        it had crashed.  ``None`` (default) waits forever — the only
        option for ``transport="thread"``, where the shard call is a
        plain method call with no wire to deadline.
    addresses:
        Where the shard host listeners are (``transport="tcp"`` only): a
        list of :class:`~repro.streaming.netserve.ShardAddress`,
        ``"host:port"`` strings, or ``(host, port)`` pairs; shard ``i``
        connects to ``addresses[i % len(addresses)]``, and restarts
        reconnect to the same address.  ``None`` (the default) boots a
        private loopback listener inside this stream — single-host tcp
        serving with zero setup, the configuration the test suite and CI
        exercise.
    heartbeat_every:
        Period in seconds of the health-check loop: a daemon thread
        pings every live shard (one
        :meth:`~repro.streaming.transport.ShardRpcClient.ping` RPC,
        sharing the ingestion lock) so dead or stuck workers are
        detected within ``heartbeat_every + request_timeout`` seconds
        even when no traffic is flowing — without a ``request_timeout``
        the ping only detects *crashed* workers (pipe/socket EOF), since
        an unbounded ping to a wedged worker would block.  ``None``
        (default) disables the loop; detection then happens on the next
        RPC, exactly as before.
    restart_policy:
        ``"never"`` (default) — dead shards stay dead until an explicit
        :meth:`restart_shard`; ``"auto"`` — the heartbeat loop restarts
        any dead shard it finds (requires ``heartbeat_every``), with the
        same budget semantics as a manual restart (free under parallel
        composition; charged — and refused on an empty ledger — under
        basic).  Counted in :meth:`heartbeat_stats`.
    shard_horizon:
        Tree capacity per shard; defaults to the full ``horizon`` so any
        routing imbalance fits (slightly conservative noise).  Set to
        ``ceil(T/K)`` when the router guarantees balance.
    backend:
        ``"moment"`` (default — Algorithm 2's raw-moment shards),
        ``"projected"`` (Algorithm 3's shared-Φ projected-moment shards;
        requires ``mechanism="tree"`` and a ``horizon``), ``"sketch"``
        (shared sparse-JL ``Φ`` with per-block sketch-side noise instead
        of tree noise — :class:`SketchShard`; requires
        ``mechanism="tree"`` and a ``horizon``, refuses ``decay`` and
        ``window``), or ``"iv"`` (private two-stage least squares:
        three-statistic (zz, zx, zy) shard bundles over stacked
        ``[z | x]`` blocks, solved by
        :class:`~repro.core.priv_inc_iv.PrivIncIV`; requires
        ``mechanism="tree"``, a ``horizon`` and ``instruments``, refuses
        ``decay`` and ``window``).
    instruments:
        Number of instrument coordinates ``p`` (``backend="iv"`` only;
        required there).  Blocks then carry stacked ``[z | x]`` rows of
        width ``instruments + dim`` with ``‖z‖ ≤ 1, ‖x‖ ≤ 1, |y| ≤ 1``,
        and identification needs ``instruments ≥ dim`` (checked by the
        default solver).
    x_domain:
        The covariate domain ``X`` (backends ``"projected"`` and
        ``"sketch"`` only) — needed to Gordon-size ``Φ`` when neither
        ``projection`` nor ``projected_dim`` is given, and by the default
        ``PrivIncReg2`` solver in any case.
    projection:
        Optional pre-built shared projection (anything exposing
        ``matrix``/``apply``/``projected_dim``, e.g. a
        :class:`~repro.sketching.sparse_jl.SparseProjection`); drawn
        internally from ``rng`` when omitted — Gaussian under
        ``backend="projected"``, sparse-JL under ``backend="sketch"``.
        Privacy is unaffected by the choice — the Step-4 rescaling pins
        Δ₂ = 2 for any fixed Φ.
    projected_dim, gamma:
        Explicit ``m`` override / distortion override for the internally
        drawn ``Φ`` (backends ``"projected"``/``"sketch"`` only; the
        default sizing is
        :func:`~repro.core.projected_regression.projected_sizing`, the
        same arithmetic ``PrivIncReg2`` applies).
    sparsity_factor:
        Sparsity ``s`` of the internally drawn sparse-JL ``Φ``
        (``backend="sketch"`` only; default 3): each entry is non-zero
        with probability ``1/s``, so per-block ingest costs ``~1/s`` of
        the dense product.  Refused with a pre-built ``projection`` —
        pass ``SparseProjection(..., sparsity_factor=s)`` directly
        instead.
    solver:
        Any object with ``refresh_from_released(t, gram, cross)`` (or,
        for bundles beyond the default pair,
        ``refresh_from_bundle(t, moments)``), ``current_estimate()`` and
        ``estimate_version`` — defaults to a
        :class:`~repro.core.incremental_regression.PrivIncReg1` (or the
        unbounded variant when ``horizon`` is ``None``; or a
        :class:`~repro.core.projected_regression.PrivIncReg2` sharing the
        front's ``Φ`` under ``backend="projected"``/``"sketch"``; or a
        :class:`~repro.core.priv_inc_iv.PrivIncIV` under
        ``backend="iv"``) whose own trees never ingest; it contributes
        only the post-tree post-processing.
    beta, fidelity, iteration_cap:
        Forwarded to the default solver.
    rng:
        Seed or Generator.  Under ``backend="projected"`` (and
        ``"sketch"``) the shared ``Φ`` is drawn from it first (exactly
        the plain ``PrivIncReg2`` consumption); then shard ``i``'s
        bundle mechanisms use children ``[n·i, n·(i+1))`` of
        ``rng.spawn(n·K)`` where ``n`` is the bundle size — for the
        default two-entry bundle that is children ``2i``/``2i+1`` of
        ``rng.spawn(2K)``, and for ``K=1`` exactly the plain estimators'
        two-child spawn, which is what makes the ``K=1`` server
        bit-identical (moment backend) or tree-release-bit-identical
        (projected backend) to the plain batched path.
    """

    def __init__(
        self,
        constraint: ConvexSet,
        params: PrivacyParams,
        shards: int = 2,
        *,
        horizon: int | None = None,
        refresh_every: int | None = None,
        ingest: str = "exact",
        mechanism: str = "tree",
        decay: float | None = None,
        window: int | float | None = None,
        composition: str = "parallel",
        router: "str | callable" = "round_robin",
        mode: str = "sync",
        transport: str = "thread",
        request_timeout: float | None = None,
        addresses=None,
        heartbeat_every: float | None = None,
        restart_policy: str = "never",
        shard_horizon: int | None = None,
        backend: str = "moment",
        instruments: int | None = None,
        x_domain: PointSet | None = None,
        projection=None,
        projected_dim: int | None = None,
        gamma: float | None = None,
        sparsity_factor: int | None = None,
        solver=None,
        beta: float = 0.05,
        fidelity: str = "fast",
        iteration_cap: int = 400,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if ingest not in ("exact", "fast"):
            raise ValidationError(f"ingest must be 'exact' or 'fast', got {ingest!r}")
        if backend not in ("moment", "projected", "sketch", "iv"):
            raise ValidationError(
                f"backend must be 'moment', 'projected', 'sketch' or 'iv', "
                f"got {backend!r}"
            )
        if backend in ("moment", "iv") and not (
            x_domain is None
            and projection is None
            and projected_dim is None
            and gamma is None
        ):
            raise ValidationError(
                "x_domain/projection/projected_dim/gamma only apply to "
                "backend='projected' or 'sketch'"
            )
        if backend == "iv":
            if instruments is None:
                raise ValidationError(
                    "backend='iv' needs instruments (the width p of the z "
                    "prefix of each stacked [z | x] block)"
                )
            instruments = check_int("instruments", instruments, minimum=1)
        elif instruments is not None:
            raise ValidationError("instruments only applies to backend='iv'")
        if sparsity_factor is not None:
            if backend != "sketch":
                raise ValidationError(
                    "sparsity_factor only applies to backend='sketch' (it "
                    "sizes the sparse-JL Φ the sketch backend draws)"
                )
            sparsity_factor = check_int(
                "sparsity_factor", sparsity_factor, minimum=1
            )
        if backend in ("projected", "sketch") and mechanism != "tree":
            raise ValidationError(
                f"backend={backend!r} needs tree shards (there is no "
                "horizon-free projected solver; Algorithm 3 assumes a known T)"
            )
        if backend == "iv" and mechanism != "tree":
            raise ValidationError(
                "backend='iv' needs tree shards (the two-stage solver "
                "assumes a known horizon T)"
            )
        if mechanism not in ("tree", "hybrid"):
            raise ValidationError(
                f"mechanism must be 'tree' or 'hybrid', got {mechanism!r}"
            )
        if mode not in ("sync", "async", "manual"):
            raise ValidationError(
                f"mode must be 'sync', 'async', or 'manual', got {mode!r}"
            )
        if transport not in ("thread", "process", "tcp"):
            raise ValidationError(
                f"transport must be 'thread', 'process', or 'tcp', got "
                f"{transport!r}"
            )
        if request_timeout is not None:
            if transport == "thread":
                raise ValidationError(
                    "request_timeout needs a wire to deadline "
                    "(transport='process' or 'tcp'); in-process shard "
                    "calls are plain method calls"
                )
            if not request_timeout > 0:
                raise ValidationError(
                    f"request_timeout must be positive (seconds) or None, "
                    f"got {request_timeout!r}"
                )
        if addresses is not None and transport != "tcp":
            raise ValidationError(
                "addresses only applies to transport='tcp'"
            )
        if restart_policy not in ("never", "auto"):
            raise ValidationError(
                f"restart_policy must be 'never' or 'auto', got "
                f"{restart_policy!r}"
            )
        if heartbeat_every is not None and not heartbeat_every > 0:
            raise ValidationError(
                f"heartbeat_every must be positive (seconds) or None, got "
                f"{heartbeat_every!r}"
            )
        if restart_policy == "auto" and heartbeat_every is None:
            raise ValidationError(
                "restart_policy='auto' is driven by the health-check loop; "
                "set heartbeat_every"
            )
        if ingest == "fast" and mechanism != "tree":
            raise ValidationError(
                "ingest='fast' needs tree shards (advance_sum is a "
                "TreeMechanism serving path)"
            )
        decay, window = check_release_knobs(decay, window)
        if backend == "sketch" and decay is not None:
            raise ValidationError(
                "decay is not supported with backend='sketch': per-block "
                "sketch noise keeps no node subtotals to fade; use "
                "backend='moment' or 'projected' for decayed streams"
            )
        if backend == "sketch" and window is not None:
            raise ValidationError(
                "window is not supported with backend='sketch': per-block "
                "sketch noise cannot expire elements; use window= with the "
                "tree backends"
            )
        if backend == "iv" and (decay is not None or window is not None):
            raise ValidationError(
                "decay/window are not supported with backend='iv': the "
                "two-stage solve has no non-stationary utility theory yet; "
                "use the single-equation backends for drifting streams"
            )
        if window is not None and math.isinf(window) and mechanism != "tree":
            raise ValidationError(
                "window=inf is the degenerate never-expiring window (one "
                "tree over the full stream): it needs mechanism='tree' and "
                "a horizon"
            )
        if window is not None and not math.isinf(window) and ingest == "fast":
            raise ValidationError(
                "ingest='fast' cannot serve a finite window: the "
                "pre-reduced block totals advance_sum consumes cannot be "
                "split at chunk expiry boundaries; use ingest='exact'"
            )
        if mechanism == "tree" and horizon is None:
            raise ValidationError(
                "mechanism='tree' needs a horizon (use mechanism='hybrid' "
                "for horizon-free serving)"
            )
        if router != "round_robin" and not callable(router):
            raise ValidationError(
                f"router must be 'round_robin' or a callable, got {router!r}"
            )
        if callable(router) and composition == "parallel":
            # A data-dependent router breaks the disjointness argument the
            # full-budget parallel mode relies on: a neighboring stream can
            # re-route a block, changing TWO shards' transcripts.  The
            # library cannot verify a callable is data-independent, so it
            # refuses the unsound combination rather than under-reporting
            # the privacy loss.
            raise ValidationError(
                "a callable router cannot be certified disjoint under "
                "neighboring streams; use composition='basic' (per-shard "
                "(ε/K, δ/K)) with custom routing"
            )
        self.constraint = constraint
        self.params = params
        self.dim = constraint.dim
        self.shards_count = check_int("shards", shards, minimum=1)
        self.horizon = (
            None if horizon is None else check_int("horizon", horizon, minimum=1)
        )
        self.refresh_every = (
            None
            if refresh_every is None
            else check_int("refresh_every", refresh_every, minimum=1)
        )
        self.ingest = ingest
        self.mechanism = mechanism
        self.decay = decay
        self.window = window
        self.composition = composition
        self.mode = mode
        self.transport = transport
        self.request_timeout = request_timeout
        self.heartbeat_every = heartbeat_every
        self.restart_policy = restart_policy
        # transport="tcp" with no addresses: boot a private loopback
        # listener owned (and closed) by this stream — single-host tcp
        # with zero setup.  Explicit addresses mean the listeners are
        # someone else's lifecycle (other hosts); we only connect.
        self._listener: ShardHostListener | None = None
        self._owns_listener = False
        if transport == "tcp":
            if addresses is None:
                self._listener = ShardHostListener()
                self._owns_listener = True
                addresses = [self._listener.address]
            self.addresses = tuple(
                ShardAddress.coerce(address) for address in addresses
            )
        else:
            self.addresses = None
        self._router = router
        self._rng = check_rng(rng)
        self._fast = ingest == "fast"

        if shard_horizon is not None and self.mechanism != "tree":
            raise ValidationError(
                "shard_horizon only applies to mechanism='tree' (hybrid "
                "shards are horizon-free)"
            )
        if shard_horizon is None:
            shard_horizon = self.horizon
        else:
            shard_horizon = check_int("shard_horizon", shard_horizon, minimum=1)
        self.shard_horizon = shard_horizon if self.mechanism == "tree" else None

        self.backend = backend
        self.instruments = instruments
        # The named statistics every shard's bundle declares, in order —
        # ("cross", "gram") for the single-equation backends, ("zz",
        # "zx", "zy") for iv.  Everything downstream (rng spawn, ledger
        # labels, merge slots, refresh dispatch) is keyed off this tuple.
        self.bundle_names = bundle_names(backend)
        # Width of an ingested block row: the estimand dimension, plus
        # the stacked instrument prefix under backend="iv".
        self._block_dim = (
            self.dim + instruments if backend == "iv" else self.dim
        )
        self.x_domain = x_domain
        self._solver_gamma = gamma
        if backend in ("projected", "sketch"):
            if solver is None and x_domain is None:
                raise ValidationError(
                    f"backend={backend!r} needs x_domain for the default "
                    "PrivIncReg2 solver (or pass an explicit solver)"
                )
            if projection is not None:
                if sparsity_factor is not None:
                    raise ValidationError(
                        "sparsity_factor sizes the internally drawn sparse "
                        "Φ; it cannot rewire a pre-built projection — pass "
                        "SparseProjection(..., sparsity_factor=s) directly"
                    )
                if projection.original_dim != self.dim:
                    raise ValidationError(
                        f"projection maps from dim {projection.original_dim}, "
                        f"expected {self.dim}"
                    )
                self.projection = projection
            else:
                if projected_dim is None:
                    if x_domain is None:
                        raise ValidationError(
                            f"backend={backend!r} needs x_domain (or an "
                            "explicit projection/projected_dim) to size Φ"
                        )
                    _, _, projected_dim = projected_sizing(
                        self.horizon, constraint, x_domain, beta=beta, gamma=gamma
                    )
                else:
                    projected_dim = check_int(
                        "projected_dim", projected_dim, minimum=1
                    )
                # Φ is drawn from the front's generator BEFORE the shard
                # spawn — the same consumption order as a plain PrivIncReg2,
                # which keeps the K=1 shard children identical to the plain
                # estimator's two trees.
                if backend == "sketch":
                    self.projection = SparseProjection(
                        self.dim,
                        projected_dim,
                        sparsity_factor=(
                            3 if sparsity_factor is None else sparsity_factor
                        ),
                        rng=self._rng,
                    )
                else:
                    self.projection = GaussianProjection(
                        self.dim, projected_dim, rng=self._rng
                    )
            self.projected_dim = self.projection.projected_dim
        else:
            self.projection = None
            self.projected_dim = None
        self.sparsity_factor = getattr(self.projection, "sparsity_factor", None)

        budgets = shard_budgets(params, self.shards_count, composition)
        # One independent child generator per bundle entry per shard —
        # shard i consumes the contiguous slice [n·i, n·(i+1)).  For the
        # default two-entry bundle this is the historical spawn(2K) with
        # children 2i/2i+1, byte-for-byte.
        entries = len(self.bundle_names)
        children = self._rng.spawn(entries * self.shards_count)
        shards: list[MomentShard] = []
        try:
            for i in range(self.shards_count):
                shards.append(
                    self._make_shard(
                        i, budgets[i], children[entries * i : entries * (i + 1)]
                    )
                )
        except BaseException:
            # A failed shard (e.g. a process worker whose spawn payload
            # would not pickle) must not leak the workers already booted,
            # nor the self-hosted tcp listener.
            for shard in shards:
                shard.shutdown()
            if self._owns_listener:
                self._listener.close()
            raise
        self._shards = shards

        # The logical budget ledger.  Under parallel composition the whole
        # sharded release costs what ONE shard costs (disjoint sub-streams);
        # under basic composition the per-shard charges sum back to the
        # total.  Either way the ledger stays within `params`, with one
        # labelled charge per bundle statistic (for the default bundle:
        # the historical cross/gram pair at params.halve(), bit-exactly).
        self.accountant = PrivacyAccountant(params, mode="basic")
        weights = (1.0,) * entries
        if composition == "parallel":
            for name, piece in zip(self.bundle_names, bundle_budgets(params, weights)):
                self.accountant.charge(f"shards:{name}-moments(parallel)", piece)
        else:
            for shard in self._shards:
                pieces = bundle_budgets(shard.budget, weights)
                for name, piece in zip(self.bundle_names, pieces):
                    self.accountant.charge(
                        f"shard{shard.index}:{name}-moments", piece
                    )

        if solver is None:
            solver = self._default_solver(beta, fidelity, iteration_cap)
        self.solver = solver

        # The hub is the single publish path (cache swap + waiter wakeup +
        # subscriber fan-out); `self.cache` stays exposed for read-only
        # inspection and the conformance suites.
        self._hub = EstimateHub()
        self.cache = self._hub.cache
        self._lock = threading.RLock()
        self._queue: queue.Queue = queue.Queue()
        self._processed = 0  # logical t: points fully ingested by shards
        self._enqueued = 0  # points accepted at the API boundary
        self._blocks_routed = 0
        self._blocks_refunded = 0
        self._next_shard = 0
        self._last_refresh_t = 0
        self.lost_steps = 0
        self._error: BaseException | None = None
        self._closed = False
        # close() must be serialized on its own lock: it blocks on the
        # queue drain, and the ingestion lock is exactly what the worker
        # needs to finish that drain.
        self._close_lock = threading.Lock()
        self._group_executor: ThreadPoolExecutor | None = None
        # Publish the solver's initial parameter so reads never block.
        self._hub.publish(
            self.solver.current_estimate(),
            self.solver.estimate_version,
            timestep=0,
            covered_steps=0,
        )
        self._worker: threading.Thread | None = None
        if mode == "async":
            self._worker = threading.Thread(
                target=self._worker_loop, name="sharded-stream-worker", daemon=True
            )
            self._worker.start()
        # The health-check loop: detects dead/stuck shards between RPCs.
        # Started last so a constructor failure never leaks it.
        self._heartbeat = {
            "pings": 0,
            "deaths_detected": 0,
            "restarts": 0,
            "errors": 0,
        }
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        if heartbeat_every is not None:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="sharded-stream-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    def _make_shard(
        self,
        index: int,
        budget: PrivacyParams,
        rngs,
    ) -> MomentShard:
        """Construct one shard worker for the configured backend + transport.

        ``rngs`` is the shard's contiguous slice of the front's spawn —
        one child per bundle statistic, in bundle order.  The remote
        transports pack the identical configuration — same rng children,
        same budget, same shared ``Φ`` — into a picklable
        :class:`~repro.streaming.transport.ShardSpec` and boot a proxy
        around it (:class:`~repro.streaming.transport.ProcessShardWorker`
        over a pipe, or
        :class:`~repro.streaming.netserve.TcpShardWorker` against
        ``addresses[index % len(addresses)]``), so every transport builds
        byte-for-byte the same mechanisms and consumes randomness
        identically.  Two-entry bundles ride the historical
        ``cross_rng``/``gram_rng`` spec fields (the wire payload is
        unchanged); wider bundles use the ``rngs`` field.
        """
        rngs = tuple(rngs)
        if self.transport in ("process", "tcp"):
            if self.backend == "iv":
                spec = ShardSpec(
                    index=index,
                    dim=self.dim,
                    budget=budget,
                    mechanism=self.mechanism,
                    shard_horizon=self.shard_horizon,
                    backend=self.backend,
                    decay=self.decay,
                    window=self.window,
                    instruments=self.instruments,
                    rngs=rngs,
                )
            else:
                spec = ShardSpec(
                    index=index,
                    dim=self.dim,
                    budget=budget,
                    cross_rng=rngs[0],
                    gram_rng=rngs[1],
                    mechanism=self.mechanism,
                    shard_horizon=self.shard_horizon,
                    backend=self.backend,
                    projection=self.projection,
                    decay=self.decay,
                    window=self.window,
                )
            if self.transport == "tcp":
                return TcpShardWorker(
                    spec,
                    self.addresses[index % len(self.addresses)],
                    request_timeout=self.request_timeout,
                )
            return ProcessShardWorker(
                spec, request_timeout=self.request_timeout
            )
        if self.backend == "iv":
            return IVMomentShard(
                index=index,
                dim=self.dim,
                budget=budget,
                rngs=rngs,
                instruments=self.instruments,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
                decay=self.decay,
                window=self.window,
            )
        if self.backend in ("projected", "sketch"):
            shard_cls = (
                SketchShard if self.backend == "sketch" else ProjectedMomentShard
            )
            return shard_cls(
                index=index,
                dim=self.dim,
                budget=budget,
                cross_rng=rngs[0],
                gram_rng=rngs[1],
                projection=self.projection,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
                decay=self.decay,
                window=self.window,
            )
        return MomentShard(
            index=index,
            dim=self.dim,
            budget=budget,
            cross_rng=rngs[0],
            gram_rng=rngs[1],
            mechanism=self.mechanism,
            shard_horizon=self.shard_horizon,
            decay=self.decay,
            window=self.window,
        )

    def _group_pool(self) -> ThreadPoolExecutor:
        """The persistent group-ingestion thread pool (lazily created).

        One pool per front, reused across :meth:`observe_group` calls, so
        per-group overhead is task dispatch only — creating threads per
        group would dominate small blocks.  Sized at ``K``: there is never
        more than one task per shard queue in flight.
        """
        if self._group_executor is None:
            self._group_executor = ThreadPoolExecutor(
                max_workers=self.shards_count, thread_name_prefix="shard-group"
            )
        return self._group_executor

    def _default_solver(self, beta: float, fidelity: str, iteration_cap: int):
        solver_rng = self._rng.spawn(1)[0]
        if self.backend == "iv":
            # Shares the bundle's (zz, zx, zy) layout; its own trees never
            # ingest — served refreshes go through refresh_from_bundle.
            return PrivIncIV(
                horizon=self.horizon,
                constraint=self.constraint,
                instruments=self.instruments,
                params=self.params,
                beta=beta,
                fidelity=fidelity,
                iteration_cap=iteration_cap,
                rng=solver_rng,
            )
        if self.backend in ("projected", "sketch"):
            # Shares the front's Φ, so refresh_from_released receives merged
            # moments living in the solver's own projected space; its two
            # internal trees never ingest (lazy allocation keeps them O(m)).
            return PrivIncReg2(
                horizon=self.horizon,
                constraint=self.constraint,
                x_domain=self.x_domain,
                params=self.params,
                beta=beta,
                gamma=self._solver_gamma,
                fidelity=fidelity,
                iteration_cap=iteration_cap,
                projection=self.projection,
                rng=solver_rng,
            )
        if self.horizon is not None:
            return PrivIncReg1(
                horizon=self.horizon,
                constraint=self.constraint,
                params=self.params,
                beta=beta,
                fidelity=fidelity,
                iteration_cap=iteration_cap,
                rng=solver_rng,
            )
        return UnboundedPrivIncReg(
            self.constraint,
            self.params,
            beta=beta,
            iteration_cap=iteration_cap,
            rng=solver_rng,
        )

    # ------------------------------------------------------------------
    # Ingestion API
    # ------------------------------------------------------------------

    def _validate_block(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shape + unit-domain validation for one block, backend-aware.

        Under ``backend="iv"`` rows are stacked ``[z | x]`` of width
        ``instruments + dim`` and the unit bounds apply to each factor
        separately (``‖z‖ ≤ 1, ‖x‖ ≤ 1, |y| ≤ 1`` — the calibration of
        all three IV statistics); otherwise the paper's plain
        ``‖x‖ ≤ 1, |y| ≤ 1`` domain.
        """
        xs, ys = check_xy_block(xs, ys, dim=self._block_dim)
        if self.backend == "iv":
            p = self.instruments
            check_unit_iv_domain("ShardedStream", xs[:, :p], xs[:, p:], ys)
        else:
            check_unit_xy_domain("ShardedStream", xs, ys)
        return xs, ys

    def observe(self, x: np.ndarray, y: float) -> np.ndarray:
        """Ingest one point (a block of one); return the cached estimate.

        In async mode this enqueues and returns immediately — the returned
        estimate is the cached one, which may not reflect this point until
        the worker's next refresh completes.
        """
        x = check_vector("x", x, dim=self._block_dim)
        return self.observe_batch(x[None, :], np.asarray([float(y)]))

    def observe_batch(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Ingest a block of consecutive points; return the cached estimate.

        The block is validated and accepted (or rejected) atomically at
        the API boundary, then routed whole to one shard.  ``mode="sync"``
        processes inline; otherwise the block is enqueued FIFO and this
        returns without touching the shard trees or the solver.
        """
        self._raise_if_unusable()
        xs, ys = self._validate_block(xs, ys)
        k = xs.shape[0]
        # Reserve capacity under the lock: concurrent producers must not
        # both pass the horizon check (the noise calibration is for T
        # elements, so overshooting it would be a privacy violation, not a
        # bookkeeping one).
        with self._lock:
            if self.horizon is not None and self._enqueued + k > self.horizon:
                raise StreamExhaustedError(
                    f"ShardedStream configured for horizon {self.horizon} "
                    f"received a block of {k} points at logical step "
                    f"{self._enqueued}"
                )
            self._enqueued += k
        if self.mode == "sync":
            self._process_block(xs, ys)
        else:
            # Enqueue private copies: check_xy_block may alias the caller's
            # buffers, and a producer that refills its block buffer before
            # the worker drains would otherwise feed the trees data that
            # was never validated (breaking the unit-domain sensitivity
            # calibration) and diverge from the synchronous path.
            self._queue.put((np.array(xs), np.array(ys)))
        return self.current_estimate()

    def observe_group(
        self,
        blocks,
        workers: int | None = None,
    ) -> np.ndarray:
        """Ingest a *group* of blocks, thread-parallel across shards.

        Each block of the group is routed exactly as ``len(blocks)``
        successive :meth:`observe_batch` calls would route it (round-robin
        over live shards, in group order), but the per-shard work runs
        concurrently on a thread pool: shards are fully independent — own
        mechanisms, own generators, a read-only shared ``Φ`` — and the
        heavy lifting (the BLAS moment products of the ``fast`` tier, the
        Gaussian draws) releases the GIL, so a group of ``K`` blocks
        ingests in roughly the time of the largest single block.  One
        merge + solve runs after the whole group (the refresh cadence
        still honors ``refresh_every``), so the served estimate is exactly
        the sequential route's post-group state; per-shard tree releases
        are bit-identical to the sequential route because each shard
        consumes its blocks in the same order either way.

        Only ``mode="sync"`` supports groups (async/manual callers already
        have a queue to overlap ingestion with).

        Parameters
        ----------
        blocks:
            Sequence of ``(xs, ys)`` block pairs (each ``(k_i, d)`` /
            ``(k_i,)``).  The whole group is validated and reserved
            against the horizon atomically before anything ingests.
        workers:
            Thread-pool width; defaults to one thread per shard that
            received work.  ``workers=1`` degrades to inline sequential
            ingestion (useful as a control in benchmarks).

        Raises
        ------
        GroupIngestionError
            If any shard fails mid-group — a per-shard capacity overrun
            (custom ``shard_horizon``) or, under ``transport="process"``,
            a worker process dying mid-group: the committed blocks stay
            committed, the failed blocks' horizon reservation is refunded
            (a dead worker's previously acknowledged mass goes to
            ``lost_steps``), and ``failures`` reports which group indices
            were lost.
        """
        self._raise_if_unusable()
        if self.mode != "sync":
            raise ServingError(
                "observe_group requires mode='sync' (async/manual modes "
                "already pipeline through the ingestion queue)"
            )
        blocks = list(blocks)
        if not blocks:
            raise ValidationError("block group must contain at least one block")
        if workers is not None:
            workers = check_int("workers", workers, minimum=1)
        validated = []
        for xs, ys in blocks:
            xs, ys = self._validate_block(xs, ys)
            validated.append((xs, ys))
        total = sum(len(ys) for _, ys in validated)
        with self._lock:
            if self.horizon is not None and self._enqueued + total > self.horizon:
                raise StreamExhaustedError(
                    f"ShardedStream configured for horizon {self.horizon} "
                    f"received a group of {total} points at logical step "
                    f"{self._enqueued}"
                )
            self._enqueued += total
            # On failure _ingest_group has already refunded the failed
            # blocks' reservation (a pre-ingestion routing failure refunds
            # everything).
            self._ingest_group(validated, workers)
            if self._should_refresh():
                self._refresh()
        return self.current_estimate()

    def _ingest_group(self, blocks, workers: int | None) -> None:
        """Route a validated group, then drain per-shard queues in parallel.

        Routing happens up front (it is order-sensitive shared state);
        after that each shard's assigned blocks form an independent work
        queue consumed by one task, so no two threads ever touch the same
        mechanism.  Failures are per-block atomic (the trees validate and
        check capacity before consuming), per-shard fail-stop (a shard
        stops at its first failed block), and fully reported.
        """
        routed = 0
        try:
            assignments: dict[int, list[tuple[int, MomentShard, np.ndarray, np.ndarray]]] = {}
            for group_index, (xs, ys) in enumerate(blocks):
                shard = self._route(xs, ys)
                self._blocks_routed += 1
                routed += 1
                assignments.setdefault(shard.index, []).append(
                    (group_index, shard, xs, ys)
                )
        except BaseException:
            # A routing failure refunds the whole group: nothing ingested,
            # so every block counted so far is a refund, not a commit.
            self._blocks_refunded += routed
            self._enqueued -= sum(len(ys) for _, ys in blocks)
            raise

        ingested = 0
        failures: list[tuple[int, BaseException]] = []
        failure_lock = threading.Lock()

        def drain_queue(tasks) -> int:
            """Ingest ONE shard's queue in order; fail-stop that shard only.

            A failed block aborts the rest of *this shard's* queue (its
            sub-stream order would otherwise gap) and reports every
            unattempted block of the queue as failed; other shards'
            queues are unaffected.
            """
            done = 0
            for position, (group_index, shard, xs, ys) in enumerate(tasks):
                try:
                    shard.ingest(xs, ys, self._fast)
                except BaseException as exc:
                    with failure_lock:
                        # A crashed process worker's acknowledged mass is
                        # lost (no-op for ordinary ingest failures — the
                        # shard is still alive).
                        self._note_shard_death(shard)
                        failures.append((group_index, exc))
                        failures.extend(
                            (later_index, exc)
                            for later_index, _, _, _ in tasks[position + 1 :]
                        )
                    return done
                done += len(ys)
            return done

        def drain_bucket(bucket) -> int:
            return sum(drain_queue(tasks) for tasks in bucket)

        queues = list(assignments.values())
        width = min(workers or len(queues), len(queues))
        if width == 1:
            ingested = drain_bucket(queues)
        else:
            # Bucket whole per-shard queues onto `width` threads of the
            # persistent pool.  Buckets hold queues (never flattened), so
            # per-shard order — and with it tree-release bit-identity — is
            # preserved, and one shard's failure stops only its own queue.
            buckets: list[list] = [[] for _ in range(width)]
            for i, tasks in enumerate(queues):
                buckets[i % width].append(tasks)
            ingested = sum(self._group_pool().map(drain_bucket, buckets))
        self._processed += ingested
        if failures:
            failures.sort(key=lambda pair: pair[0])
            lost = sum(
                len(blocks[group_index][1]) for group_index, _ in failures
            )
            self._enqueued -= lost
            # Every failed block — the one that raised and the unattempted
            # fail-stop casualties behind it — was refunded above; without
            # this the routing stats would overcount commits on partial
            # failure (blocks_routed − blocks_refunded == blocks committed).
            self._blocks_refunded += len(failures)
            raise GroupIngestionError(
                f"{len(failures)} of {len(blocks)} group blocks failed to "
                f"ingest ({lost} points refunded); first error: "
                f"{failures[0][1]}",
                failures=failures,
            ) from failures[0][1]

    def flush(self) -> ServedEstimate:
        """Drain pending ingestion and solve through everything processed.

        Blocks until every enqueued block has been processed (async mode
        waits on the worker; manual mode pumps inline), then — if any mass
        arrived since the last refresh — runs a final merge + solve so the
        returned (and cached) estimate covers the full processed stream.
        """
        self._raise_if_unusable()
        if self.mode == "manual":
            self.pump()
        elif self.mode == "async":
            self._join_queue()
        self._raise_if_unusable()
        with self._lock:
            if self._processed > self._last_refresh_t:
                self._refresh()
        return self.current_served()

    def _join_queue(self) -> None:
        """``Queue.join`` with a worker-liveness probe (bounded waits).

        A bare ``join()`` parks on ``task_done`` calls that can never come
        if the async worker thread died between ``get()`` and
        ``task_done()`` — the flush would hang forever.  Waiting in
        bounded slices on the queue's ``all_tasks_done`` condition and
        probing the worker's ``is_alive()`` between them turns that hang
        into a typed :class:`~repro.exceptions.ServingError`; the live
        path is unchanged (the ``task_done`` notify wakes the wait early).
        """
        q = self._queue
        with q.all_tasks_done:
            while q.unfinished_tasks:
                worker = self._worker
                if worker is None or not worker.is_alive():
                    raise ServingError(
                        f"async ingestion worker is dead with "
                        f"{q.unfinished_tasks} queued block(s) unprocessed; "
                        f"the queue can never drain, so the stream cannot "
                        f"be flushed"
                    )
                q.all_tasks_done.wait(timeout=0.05)

    def pump(self, max_blocks: int | None = None) -> int:
        """Process up to ``max_blocks`` queued blocks inline (manual mode).

        Returns the number of blocks processed.  The test suite uses this
        to enumerate queue interleavings deterministically.
        """
        if self.mode != "manual":
            raise ServingError("pump() is only available in mode='manual'")
        self._raise_if_unusable()
        processed = 0
        while max_blocks is None or processed < max_blocks:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            self._process_block(*item)
            processed += 1
        return processed

    def close(self) -> None:
        """Flush, stop every worker, and refuse further ingestion.

        Workers are reclaimed even when the final flush raises (e.g. a
        poisoned server): shutdown must never leak the async thread, the
        group pool, or — under ``transport="process"`` — the shard worker
        processes.

        Idempotent under concurrency: all of close runs under a dedicated
        lock (a bare ``_closed`` check-then-act would let two concurrent
        closers both run the teardown — double ``_CLOSE`` sentinels, a
        ``join`` on a reset ``_worker``, double executor shutdown), so a
        second caller blocks until the first finishes, then returns.
        """
        with self._close_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._closed:
            return
        # Stop the health-check loop first: an auto-restart racing the
        # teardown would re-boot workers close is about to reap.
        self._heartbeat_stop.set()
        try:
            if self._error is None:
                self.flush()
        finally:
            self._closed = True
            if self._heartbeat_thread is not None:
                # Bounded: the loop might be mid-ping on a wedged worker
                # (daemon thread — safe to abandon past the deadline).
                self._heartbeat_thread.join(timeout=5.0)
                self._heartbeat_thread = None
            if self._worker is not None:
                self._queue.put(_CLOSE)
                self._worker.join()
                self._worker = None
            if self._group_executor is not None:
                self._group_executor.shutdown(wait=True)
                self._group_executor = None
            for shard in self._shards:
                shard.shutdown()
            if self._owns_listener:
                self._listener.close()
            # Release parked wait_for_version callers (no further publish
            # can ever satisfy them); served entries stay readable.
            self._hub.close()

    def __enter__(self) -> "ShardedStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def current_estimate(self) -> np.ndarray:
        """The cached parameter — one lock-free read-only pointer read.

        The anonymous shared read: thread-safe from any number of
        readers, touches no shared mutable state, keeps no statistics.
        Readers that want per-reader stats, the snapshot fast path, or
        blocking waits should hold a :meth:`reader` handle instead.
        """
        return self.cache.get().theta

    def current_served(self) -> ServedEstimate:
        """The cached estimate with version/coverage metadata (lock-free)."""
        return self.cache.get()

    def reader(self) -> ReaderHandle:
        """A per-reader fan-out handle (one per reader thread).

        Handles hold a private snapshot with a version fast-path check —
        between refreshes a read returns the reader's own reference
        without touching shared state — and keep per-reader read counts
        that :meth:`read_stats` aggregates on demand.  Usable as a
        context manager; ``close()`` (or stream close) retires it.
        """
        return self._hub.reader()

    def subscribe(self, callback) -> Subscription:
        """Fire ``callback(entry)`` on every publish (pub-sub invalidation).

        Callbacks run on the publishing thread after the new entry is
        visible to readers; exceptions are isolated per subscription
        (counted on ``Subscription.errors``, never propagated to the
        refresh path).  Returns the :class:`Subscription`; call its
        ``unsubscribe()`` to stop.
        """
        return self._hub.subscribe(callback)

    def wait_for_version(
        self, version: int, timeout: float | None = None
    ) -> ServedEstimate:
        """Block until a solve with ``version`` (or newer) is published.

        The poller-to-waiter conversion: built on the cache's condition
        variable, woken by the publish that satisfies it (or by
        :meth:`close`, with a :class:`~repro.exceptions.ServingError`).
        Raises :class:`~repro.exceptions.WaitTimeoutError` on timeout.
        """
        return self._hub.wait_for_version(version, timeout=timeout)

    def read_stats(self) -> ReadStats:
        """One consistent snapshot of the read fan-out (aggregated on demand)."""
        return self._hub.read_stats()

    @property
    def estimate_version(self) -> int:
        """Number of completed solves published to the cache (lock-free)."""
        return self.cache.version

    @property
    def steps_ingested(self) -> int:
        """Points fully processed into shard mechanisms (logical ``t``)."""
        return self._processed

    @property
    def steps_enqueued(self) -> int:
        """Points accepted at the API boundary (≥ ``steps_ingested``)."""
        return self._enqueued

    @property
    def blocks_routed(self) -> int:
        """Blocks assigned a shard so far (monotone — feeds the callable
        router's ``block_index``, so refunds never reuse an index)."""
        return self._blocks_routed

    @property
    def blocks_refunded(self) -> int:
        """Routed blocks whose ingestion failed or was never attempted
        (fail-stop casualties); their reservations were refunded, so
        ``blocks_routed − blocks_refunded`` counts committed blocks."""
        return self._blocks_refunded

    def shard_states(self) -> list[dict]:
        """Per-shard liveness and load snapshot (diagnostics)."""
        with self._lock:
            return [
                {"index": s.index, "alive": s.alive, "steps": s.steps}
                for s in self._shards
            ]

    def heartbeat_stats(self) -> dict:
        """Counters from the health-check loop (one consistent snapshot).

        ``pings`` (successful probes), ``deaths_detected`` (probes that
        found a dead/stuck worker and booked its loss),
        ``restarts`` (``restart_policy="auto"`` recoveries), ``errors``
        (probe or restart failures that were neither — e.g. a refused
        restart under basic composition).  All zero when
        ``heartbeat_every`` is unset.
        """
        with self._lock:
            return dict(self._heartbeat)

    def _heartbeat_loop(self) -> None:
        """The health-check daemon: ping every live shard, book deaths.

        Shares the ingestion lock, so probes are serialized with real
        traffic — a ping can never interleave mid-RPC on a worker's wire.
        With a ``request_timeout`` a *stuck* worker fails its ping within
        the deadline; without one the probe only catches *crashed*
        workers (pipe/socket EOF fails fast).  Under
        ``restart_policy="auto"`` any dead shard found is restarted on
        the spot with :meth:`restart_shard` semantics (reentrant — the
        ingestion lock is an RLock).
        """
        while not self._heartbeat_stop.wait(self.heartbeat_every):
            with self._lock:
                if self._closed:
                    return
                for shard in self._shards:
                    if not shard.alive:
                        continue
                    probe = getattr(shard, "ping", None)
                    try:
                        if probe is not None:
                            probe()
                        self._heartbeat["pings"] += 1
                    except ShardUnavailableError:
                        self._heartbeat["deaths_detected"] += 1
                        self._note_shard_death(shard)
                    except Exception:  # pragma: no cover - defensive
                        self._heartbeat["errors"] += 1
                if self.restart_policy == "auto":
                    for index in range(self.shards_count):
                        if self._shards[index].alive:
                            continue
                        try:
                            self.restart_shard(index)
                            self._heartbeat["restarts"] += 1
                        except Exception:
                            # e.g. budget refusal under basic composition:
                            # the shard stays dead, merges stay partial.
                            self._heartbeat["errors"] += 1

    def memory_floats(self) -> int:
        """Floats held by the shard mechanisms (plus the shared ``Φ``).

        ``K · O(moment_dim² log T)`` — under ``backend="projected"`` that
        is ``K·O(m² log T) + m·d`` (one shared projection, counted once),
        versus the moment backend's ``K·O(d² log T)``; the quantity
        ``bench_projected_serving.py`` records.
        """
        with self._lock:
            total = 0
            for shard in self._shards:
                try:
                    total += shard.memory_floats()
                except ShardUnavailableError:
                    # Crash detected by the diagnostic itself: a dead
                    # worker holds nothing, and its mass is booked lost.
                    self._note_shard_death(shard)
        if self.projection is not None:
            total += int(self.projection.matrix.size)
        return total

    def merged_moments(self) -> tuple[MergedRelease, ...]:
        """The merged released moments right now, in bundle order.

        One :class:`~repro.privacy.tree.MergedRelease` per bundle
        statistic — ``(cross, gram)`` for the single-equation backends,
        ``(zz, zx, zy)`` for iv.  Post-processing of already-released
        sums — free to call, used by the conformance suite to compare
        against per-shard replays.
        """
        with self._lock:
            return self._merge()

    def merged_bundle(self) -> dict[str, MergedRelease]:
        """The merged released moments keyed by statistic name.

        The same merges as :meth:`merged_moments`, as the name-keyed
        mapping solver ``refresh_from_bundle`` hooks consume.
        """
        with self._lock:
            return dict(zip(self.bundle_names, self._merge()))

    # ------------------------------------------------------------------
    # Shard lifecycle (fault injection / recovery)
    # ------------------------------------------------------------------

    def kill_shard(self, index: int) -> None:
        """Simulate a shard worker dying: its mechanisms (and mass) are lost.

        Under ``transport="process"`` this SIGKILLs the worker process —
        a real crash, not a graceful stop.  Idempotent.  Subsequent merges
        degrade to partial coverage — see the module docstring for the
        contract.
        """
        index = check_int("index", index, minimum=0)
        if index >= self.shards_count:
            raise ValidationError(
                f"shard index {index} out of range [0, {self.shards_count})"
            )
        with self._lock:
            shard = self._shards[index]
            shard.kill()
            self._note_shard_death(shard)

    def restart_shard(self, index: int) -> None:
        """Bring a dead shard back with fresh mechanisms over a fresh sub-stream.

        Under ``composition="parallel"`` the restarted shard's new
        mechanisms cover only points routed after the restart — still a
        partition of the logical stream, so the parallel-composition
        privacy argument is unchanged and the restart is free.  Under
        ``composition="basic"`` disjointness is exactly what could not be
        certified, so the replacement mechanisms' ``(ε/K, δ/K)`` budget is
        charged to the accountant — which raises
        :class:`~repro.exceptions.PrivacyBudgetError` when the ledger has
        no headroom left (the evenly-split default consumes the whole
        budget up front, so such restarts are refused).  The mass the dead
        shard had ingested stays lost (and reported) either way.
        """
        index = check_int("index", index, minimum=0)
        if index >= self.shards_count:
            raise ValidationError(
                f"shard index {index} out of range [0, {self.shards_count})"
            )
        with self._lock:
            old = self._shards[index]
            if old.alive:
                raise ServingError(
                    f"shard {index} is alive; kill_shard() before restarting"
                )
            # The replacement removes the dead worker from every later
            # sweep, so its loss must be booked here if no other path got
            # to it first (e.g. a crash first noticed by a worker-level
            # diagnostic, restarted before any merge ran).
            self._note_shard_death(old)
            entries = len(self.bundle_names)
            if self.composition == "basic":
                # One atomic charge for the replacement bundle's
                # mechanisms; PrivacyAccountant.charge rolls itself back
                # on refusal.  (For the default bundle this is the
                # historical halved pair, count=2.)
                self.accountant.charge(
                    f"shard{index}:moments(restart)",
                    bundle_budgets(old.budget, (1.0,) * entries)[0],
                    count=entries,
                )
            rngs = self._rng.spawn(entries)
            self._shards[index] = self._make_shard(index, old.budget, rngs)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _raise_if_unusable(self) -> None:
        if self._closed:
            raise ServingError("ShardedStream is closed")
        if self._error is not None:
            raise ServingError(
                f"asynchronous ingestion failed: {self._error}"
            ) from self._error

    def _route(self, xs: np.ndarray, ys: np.ndarray) -> MomentShard:
        """Pick the target shard for the next block (skipping dead shards)."""
        if callable(self._router):
            start = int(self._router(self._blocks_routed, xs, ys)) % self.shards_count
        else:
            start = self._next_shard
            self._next_shard = (self._next_shard + 1) % self.shards_count
        for offset in range(self.shards_count):
            shard = self._shards[(start + offset) % self.shards_count]
            if shard.alive:
                return shard
        raise ShardUnavailableError("every shard is dead; nothing can ingest")

    def _process_block(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Ingest one routed block under the lock, then run any due refresh.

        The single definition of the failure semantics every ingestion
        mode (sync, pump, worker) shares: an *ingest* failure leaves the
        block unconsumed — routing raises before any tree advances, and
        the trees validate and check capacity before consuming anything —
        so the block's horizon reservation is released here and a retry is
        safe.  A *refresh* failure happens after the block is committed to
        the shard trees — its capacity must stay consumed (re-ingesting
        the same points would exceed the noise calibration), and only the
        solve is retried (``flush`` re-runs it because ``_last_refresh_t``
        only advances on success).
        """
        with self._lock:
            try:
                self._ingest_block(xs, ys)
            except BaseException:
                self._enqueued -= len(ys)
                raise
            if self._should_refresh():
                self._refresh()

    def _ingest_block(self, xs: np.ndarray, ys: np.ndarray) -> None:
        shard = self._route(xs, ys)
        self._blocks_routed += 1
        try:
            shard.ingest(xs, ys, self._fast)
        except ShardUnavailableError:
            # A process worker crashed under the block, or the shard's
            # bundle tore mid-block (BundlePartialCommitError — a later
            # bundle entry failed after an earlier one committed; thread
            # shards raise nothing else from ingest): the shard's
            # previously acknowledged mass is lost; the block itself was
            # not acknowledged and is refunded by the caller, so a retry
            # routes to a live shard.
            self._note_shard_death(shard)
            self._blocks_refunded += 1
            raise
        except BaseException:
            # Any other ingest failure (capacity, validation) also leaves
            # the block unconsumed and refundable — the routing stat must
            # not count it as committed.
            self._blocks_refunded += 1
            raise
        self._processed += len(ys)

    def _should_refresh(self) -> bool:
        if self.refresh_every is None:
            return True
        if self.horizon is not None and self._processed >= self.horizon:
            return True
        return (
            self._processed // self.refresh_every
            > self._last_refresh_t // self.refresh_every
        )

    def _note_shard_death(self, shard) -> None:
        """Credit a dead worker's acknowledged mass to ``lost_steps`` — once.

        The single definition of the loss-accounting rule, so every path
        that can *observe* a death (commanded kill, crash detected during
        ingest, a bundle torn mid-block, during a merge, or by a
        diagnostic) funnels through the same once-only ledger update and
        no detection order can drop or double-count mass.  ``steps`` only
        advances on fully committed bundles, so a torn bundle's partial
        block is never counted into the loss.  No-op while the shard is
        alive or after its loss is already booked.
        """
        if not shard.alive and not shard.lost_accounted:
            shard.lost_accounted = True
            self.lost_steps += shard.steps

    def _released_handles(self, shard):
        """One shard's merge handles in bundle order, or all-``None`` if dead.

        A process worker found dead *here* (crashed since its last
        acknowledgement) is folded into the partial-coverage path on the
        spot: its mass is accounted as lost and the merge proceeds over
        the survivors, instead of failing the refresh.  Deaths detected
        earlier by paths that could not account them (e.g. a diagnostic
        RPC) are swept up here too — every served estimate is preceded by
        a merge, so the books are settled before coverage is reported.
        """
        if not shard.alive:
            self._note_shard_death(shard)
            return tuple(None for _ in self.bundle_names)
        try:
            return shard.released()
        except ShardUnavailableError:
            self._note_shard_death(shard)
            return tuple(None for _ in self.bundle_names)

    def _merge(self) -> tuple[MergedRelease, ...]:
        handles = [self._released_handles(s) for s in self._shards]
        return tuple(
            merge_released(
                [per_shard[slot] for per_shard in handles], strict=False
            )
            for slot in range(len(self.bundle_names))
        )

    def _refresh(self) -> None:
        """Merge the shard releases and run one solve; publish to the cache.

        ``_last_refresh_t`` advances only once the refresh completes (or
        there is provably nothing to solve), so a failed solve leaves the
        stream marked stale and the next ``flush``/scheduled refresh
        retries it instead of silently serving an outdated estimate.
        """
        merged = self._merge()
        covered = merged[0].covered_steps
        if covered == 0:
            # Nothing covered (e.g. every surviving shard is empty): there
            # is no objective to solve; the previous estimate stands.
            self._last_refresh_t = self._processed
            return
        # Decayed / windowed shards cover an *effective weight* different
        # from their raw step count — that weight is the logical sample
        # count the solver must size its Lipschitz constant from.  Plain
        # shards report weight == covered exactly (float vs int compares
        # exact for counts), so the historical integer path — and its
        # bit-identical solves — is preserved.
        weight = merged[0].covered_weight
        t_solve = weight if weight != covered else covered
        if self.bundle_names == ("cross", "gram"):
            cross, gram = merged
            theta = self.solver.refresh_from_released(
                t_solve, gram.value, cross.value
            )
        else:
            theta = self.solver.refresh_from_bundle(
                t_solve, dict(zip(self.bundle_names, merged))
            )
        self._hub.publish(
            theta,
            self.solver.estimate_version,
            timestep=self._processed,
            covered_steps=covered,
        )
        self._last_refresh_t = self._processed

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _CLOSE:
                    return
                if self._error is None:
                    try:
                        self._process_block(*item)
                    except BaseException as exc:  # surfaced on the next API call
                        self._error = exc
                else:
                    # A poisoned worker drops the block; refund its horizon
                    # reservation so the books match what was ingested.
                    with self._lock:
                        self._enqueued -= len(item[1])
            finally:
                self._queue.task_done()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStream(shards={self.shards_count}, dim={self.dim}, "
            f"horizon={self.horizon}, ingest={self.ingest!r}, "
            f"mechanism={self.mechanism!r}, mode={self.mode!r}, "
            f"t={self._processed})"
        )
