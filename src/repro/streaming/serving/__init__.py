"""The sharded serving layer: per-shard bundles, merged releases, cached reads.

The Tree Mechanism's releases are *additive across disjoint sub-streams*:
each shard's released prefix sum is its exact sub-stream sum plus a sum of
independent per-node Gaussians, so summing per-shard releases yields the
logical-stream statistic with a noise variance that simply adds across
shards (:func:`repro.privacy.tree.merge_released`).  That is exactly the
property a sharded server needs to split one logical stream of length ``T``
across ``K`` workers without changing the privacy analysis — the routing is
a partition, so by parallel composition each shard runs at the full
``(ε, δ)`` and the sharded release sequence satisfies the same guarantee as
the single-tree one (:func:`repro.privacy.parameters.shard_budgets`).

:class:`ShardedStream` is that serving front:

* **Routing** — incoming blocks go round-robin (or via a caller-supplied
  key router) to ``K`` :class:`MomentShard` workers, each owning an
  independent *moment bundle* (:class:`~repro.streaming.moments.MomentBundle`
  — an ordered set of named statistics, each behind its own release
  mechanism: ``Σ x y`` and ``Σ x xᵀ`` trees for the default backends, or
  Hybrid mechanisms for horizon-free serving) over its sub-stream.
* **Pluggable backends** — a backend is a bundle declaration plus a row
  transform (:meth:`MomentShard._statistics` / :meth:`MomentShard._transform`),
  so the same front serves **Algorithm 3**: ``backend="projected"`` draws
  one Gordon-sized ``Φ`` up front and hands it to every
  :class:`ProjectedMomentShard` (workers ingest ``Φx̃·y`` / ``(Φx̃)(Φx̃)ᵀ``
  through the shared Step-4 rescale helper) *and* to the default
  ``PrivIncReg2`` solver, whose ``refresh_from_released`` then consumes
  merged **projected** moments — and **private two-stage least squares**:
  ``backend="iv"`` shards (:class:`IVMomentShard`) carry the three-entry
  (ZᵀZ, ZᵀX, Zᵀy) bundle over stacked ``[z | x]`` blocks, merged and
  solved by a :class:`~repro.core.priv_inc_iv.PrivIncIV` through its
  ``refresh_from_bundle`` hook.  Every bundle pins its streams'
  sensitivity at Δ₂ = 2, so the merge rule, budget ledger, and fault
  semantics below apply to all backends verbatim — and per-shard memory
  under the projected backend drops from ``O(d² log T)`` to
  ``O(m² log T)``.
* **Transports** — shard workers live either in the serving process
  (``transport="thread"``, the default: zero-copy merges, group
  parallelism bounded by the GIL except where BLAS releases it) or each
  in their **own interpreter** (``transport="process"``: a
  :class:`~repro.streaming.transport.ProcessShardWorker` drives the same
  ``MomentShard`` over a ``multiprocessing`` pipe, shipping released
  moments back as picklable
  :class:`~repro.privacy.tree.ReleasedMoments` snapshots).  The two
  transports build identical mechanisms from identical rng children, so
  everything below — tiers, merge rule, fault semantics — holds verbatim
  for both; see :mod:`repro.streaming.transport`.
* **Group ingestion** — :meth:`ShardedStream.observe_group` ingests a
  group of routed blocks shard-parallel (shards are independent; under
  the thread transport BLAS releases the GIL, under the process transport
  each drain thread just awaits its shard's pipe while the worker
  computes on its own core), with per-shard order preserved so tree
  releases stay bit-identical to the sequential route.
* **Merge + solve** — at refresh points the per-shard released moments are
  merged slot-by-slot in bundle order and handed to a solver (Algorithm
  2's PGD pipeline via the estimators' ``refresh_from_released``
  serve-mode hook for the default (cross, gram) bundle, or the
  name-keyed ``refresh_from_bundle`` hook for wider bundles); everything
  after the tree releases is post-processing, so the refresh cadence is a
  pure utility/latency knob.
* **Async ingestion** — ``mode="async"`` makes ``observe``/``observe_batch``
  enqueue-and-return; a worker thread drains the FIFO queue and runs the
  PGD refreshes off the hot path.  Processing order equals enqueue order,
  so the final state is identical to the synchronous path (the
  linearizability contract ``tests/test_sharded_equivalence.py`` pins
  down).  ``mode="manual"`` exposes the queue pump for deterministic
  interleaving tests.
* **Cached reads, lock-free** — every completed solve publishes a
  read-only, versioned :class:`ServedEstimate` into an
  :class:`EstimateCache` by *atomic reference swap*;
  ``current_estimate`` fan-out reads are single lock-free pointer loads
  (no hot-path mutex, no shared counter) that can never observe an
  estimate older than the last completed solve.  For scaled fan-out,
  :meth:`ShardedStream.reader` hands out per-reader
  :class:`~repro.streaming.readers.ReaderHandle` snapshots (version
  fast-path, per-reader stats), and the hub's pub-sub surface
  (:meth:`ShardedStream.subscribe`, ``wait_for_version``) turns pollers
  into waiters — see :mod:`repro.streaming.readers`.

Ingest tiers (mirroring the batched-API contract):

* ``ingest="exact"`` (default) — shards ingest via the mechanisms'
  ``advance_batch``: same rng consumption and addition order as per-point
  ingestion, so merged releases (and hence served estimates) are
  **bit-identical** to a replay of the per-shard trees, and a ``K=1``
  server matches the plain batched path bit for bit.
* ``ingest="fast"`` — shards compute block moment totals with one BLAS
  product per bundle statistic (``Xᵀy`` / ``XᵀX``) and the trees draw
  noise only for the nodes alive at block boundaries
  (``TreeMechanism.advance_sum``).  Releases are **distributionally
  identical** (same active-node count, same per-node σ), not
  bit-identical; this is the high-throughput production path.

Fault semantics: :meth:`ShardedStream.kill_shard` drops a shard's
mechanisms (under the process transport it SIGKILLs the worker process);
subsequent merges degrade to the documented *partial-coverage* semantics —
the merged statistic covers the surviving sub-streams only,
``ServedEstimate.covered_steps`` and :attr:`ShardedStream.lost_steps`
report the loss (never silently dropped), and
:meth:`ShardedStream.restart_shard` brings the worker back with fresh
mechanisms (a fresh process, under ``transport="process"``) over a fresh
(still disjoint) sub-stream, which keeps the parallel-composition argument
intact.  A process worker that dies *uncommanded* is detected at the next
pipe interaction and folded into the same path: ingest raises
:class:`~repro.exceptions.ShardUnavailableError` (the block stays
refundable), merges degrade to partial coverage, and the dead worker's
acknowledged mass lands in ``lost_steps``.  A bundle torn mid-block
(a later statistic failing after an earlier one committed —
:class:`~repro.exceptions.BundlePartialCommitError`) is the same path:
the shard dies, only its fully committed blocks count into
``lost_steps``, and the torn block stays refundable.

This package splits the layer by concern: :mod:`.shards` (the bundle
backends), :mod:`.stream` (the :class:`ShardedStream` front),
:mod:`.cache` (the versioned read slot), :mod:`.validation` (shared
serving validators).  The public import surface is unchanged from the
historical single-module layout — everything below re-exports from the
submodules.
"""

from ..readers import EstimateHub, ReaderHandle, Subscription
from ..transport import ProcessShardWorker
from .cache import EstimateCache, ServedEstimate
from .shards import (
    IVMomentShard,
    MomentShard,
    ProjectedMomentShard,
    SketchShard,
    TenantShard,
)
from .stream import _CLOSE, ShardedStream
from .validation import _check_decay_groups

__all__ = [
    "ShardedStream",
    "MomentShard",
    "ProjectedMomentShard",
    "SketchShard",
    "IVMomentShard",
    "TenantShard",
    "ProcessShardWorker",
    "EstimateCache",
    "ServedEstimate",
    "EstimateHub",
    "ReaderHandle",
    "Subscription",
]
