"""Serving-layer validation helpers shared across the package."""

from __future__ import annotations

from ..._validation import check_decay
from ...exceptions import ValidationError

__all__ = ["_check_decay_groups"]


def _check_decay_groups(decays) -> tuple[float, ...]:
    """Validate a declared tuple of shared-Gram γ groups (PRIMO serving).

    ``None`` means the single plain group ``(1.0,)``.  Each entry must be
    a valid forgetting factor (``γ ∈ (0, 1]``) and the entries must be
    distinct — one shared Gram mechanism is built per group, so a repeat
    would silently spend gram budget twice on the same weighting.
    """
    if decays is None:
        return (1.0,)
    groups = tuple(
        check_decay(f"decays[{i}]", g) for i, g in enumerate(decays)
    )
    if not groups:
        raise ValidationError("decays must declare at least one γ group")
    if len(set(groups)) != len(groups):
        raise ValidationError(f"decays entries must be distinct, got {groups!r}")
    return groups
