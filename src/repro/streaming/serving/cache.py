"""The versioned estimate cache: the serving front's lock-free read slot."""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ...exceptions import (
    NoEstimateError,
    PublishConflictError,
    ServingError,
    WaitTimeoutError,
)

__all__ = ["EstimateCache", "ServedEstimate"]


@dataclass(frozen=True)
class ServedEstimate:
    """One published estimate: the versioned unit of the serving cache.

    Attributes
    ----------
    version:
        The solver's ``estimate_version`` at publication — equals the
        number of completed solves, so readers can detect refreshes.
    theta:
        The released parameter, as a **read-only** array (reads share the
        buffer; copy before mutating).
    timestep:
        Logical stream position (total points processed) when the solve
        completed.
    covered_steps:
        Stream mass the merged moments actually covered; less than
        ``timestep`` exactly when shards died (partial coverage).
    """

    version: int
    theta: np.ndarray
    timestep: int
    covered_steps: int


class EstimateCache:
    """A versioned, single-slot, lock-free-read cache for estimate fan-out.

    The read path is the point: ``get`` is a single attribute load of the
    current frozen :class:`ServedEstimate` — no lock, no counter mutation,
    no allocation — so ``current_estimate`` fan-out scales with reader
    threads instead of serializing on a hot-path mutex.  This is sound
    because the cache is published by *atomic reference swap*: ``put``
    builds a fully-frozen immutable entry first and installs it with one
    reference assignment (atomic under the GIL, and a single store on
    free-threaded builds), so a reader either sees the old entry or the
    new one, never a torn mixture.  The DP cost of the estimate was paid
    at release time; reads are pure post-processing and should cost what
    the hardware charges for a pointer load.

    ``put`` keeps a writer-side lock for the things that *do* need
    serialization: the version-monotonicity check (the version is the
    publisher's solve counter, so a reader can never observe an estimate
    older than the last completed solve), the equal-version payload check
    (``same version ⇒ same payload`` — what the per-reader snapshot fast
    path in :mod:`repro.streaming.readers` relies on), the write counter,
    and waking :meth:`wait_for_version` waiters.

    Read statistics live on :class:`~repro.streaming.readers.ReaderHandle`
    objects (aggregated on demand), never on this hot path; publisher-side
    stats come from :meth:`stats`, a single consistent snapshot.
    """

    def __init__(self) -> None:
        self._write_lock = threading.Lock()
        # Waiters block on the writer lock (waiting is never the hot
        # path); `put` notifies under the same lock, so no wakeup can be
        # missed between a waiter's version check and its wait().
        self._published = threading.Condition(self._write_lock)
        self._entry: ServedEstimate | None = None
        self._writes = 0

    def put(
        self, theta: np.ndarray, version: int, timestep: int, covered_steps: int
    ) -> ServedEstimate:
        """Publish a new estimate (atomic reference swap); returns the entry.

        Raises
        ------
        PublishConflictError
            If ``version`` is lower than the cached entry's, or equal to
            it with a *different* payload — version-based refresh
            detection would otherwise miss a changed estimate.  An
            identical-payload republish under the current version is an
            idempotent no-op (the existing entry is returned unchanged,
            and the write counter does not advance).
        """
        frozen = np.array(theta, dtype=float)
        frozen.setflags(write=False)
        entry = ServedEstimate(
            version=int(version),
            theta=frozen,
            timestep=int(timestep),
            covered_steps=int(covered_steps),
        )
        with self._write_lock:
            current = self._entry
            if current is not None:
                if entry.version < current.version:
                    raise PublishConflictError(
                        f"cache version must not decrease: {entry.version} < "
                        f"{current.version}"
                    )
                if entry.version == current.version:
                    if (
                        entry.timestep == current.timestep
                        and entry.covered_steps == current.covered_steps
                        and np.array_equal(entry.theta, current.theta)
                    ):
                        return current
                    raise PublishConflictError(
                        f"duplicate publish of version {entry.version} with a "
                        f"different payload — readers detect refreshes by "
                        f"version, so the solve counter must advance whenever "
                        f"the served estimate changes"
                    )
            self._entry = entry
            self._writes += 1
            self._published.notify_all()
        return entry

    def peek(self) -> ServedEstimate | None:
        """The current entry, or ``None`` before the first publish.

        One atomic reference load — the lock-free primitive every read
        path (``get``, the reader handles, the version property) is built
        on.
        """
        return self._entry

    def get(self) -> ServedEstimate:
        """The current entry — one lock-free pointer read, no solver work.

        Raises
        ------
        NoEstimateError
            If nothing was ever published (no solve has completed).  The
            typed subclass of :class:`~repro.exceptions.ServingError` /
            :class:`LookupError` lets readers distinguish "no estimate
            yet" from real serving failures.
        """
        entry = self._entry
        if entry is None:
            raise NoEstimateError(
                "no estimate has been published to this cache yet — "
                "ingest data and call flush() (or wait for the first "
                "scheduled refresh) so a merge + solve can publish one"
            )
        return entry

    def wait_for_version(
        self, version: int, timeout: float | None = None, abort=None
    ) -> ServedEstimate:
        """Block until an entry with ``version`` (or newer) is published.

        Turns pollers into waiters: instead of spinning on
        :attr:`version`, a reader parks on the cache's condition variable
        and is woken by the ``put`` that satisfies it.  Returns the entry
        that satisfied the wait (which may be newer than ``version``).

        Parameters
        ----------
        abort:
            Optional callable evaluated together with the version
            predicate.  Returning a non-empty string aborts the wait with
            a :class:`~repro.exceptions.ServingError` carrying that
            message — how an owner (e.g. a closing
            :class:`~repro.streaming.readers.EstimateHub`) releases
            parked waiters that can never be satisfied; pair it with
            :meth:`wake_waiters` when the abort condition changes.

        Raises
        ------
        WaitTimeoutError
            If ``timeout`` (seconds) elapses first.  ``timeout=None``
            waits indefinitely.
        """
        version = int(version)
        entry = self._entry  # fast path: already satisfied, skip the lock
        if entry is not None and entry.version >= version:
            return entry
        with self._published:
            self._published.wait_for(
                lambda: (
                    self._entry is not None and self._entry.version >= version
                )
                or (abort is not None and bool(abort())),
                timeout=timeout,
            )
            entry = self._entry
            if entry is not None and entry.version >= version:
                return entry
            reason = abort() if abort is not None else None
            if reason:
                raise ServingError(str(reason))
            have = -1 if entry is None else entry.version
            raise WaitTimeoutError(
                f"no estimate with version >= {version} was published "
                f"within {timeout}s (current version: {have})"
            )

    def wake_waiters(self) -> None:
        """Force every parked :meth:`wait_for_version` to re-check.

        For owners whose ``abort`` condition just changed (e.g. a hub
        closing); a no-op for waiters whose predicates are still false.
        """
        with self._published:
            self._published.notify_all()

    @property
    def version(self) -> int:
        """Version of the current entry (−1 when empty) — lock-free."""
        entry = self._entry
        return -1 if entry is None else entry.version

    @property
    def writes(self) -> int:
        """Completed publishes (idempotent republishes excluded)."""
        with self._write_lock:
            return self._writes

    def stats(self) -> dict:
        """One consistent publisher-side snapshot (version/writes/coverage).

        Taken under the writer lock so ``version`` and ``writes`` can
        never disagree mid-publish — the single sanctioned way to read
        cache statistics (benchmarks used to read the bare attributes
        racily).  Reader-side counts live on the handles; aggregate them
        via :meth:`repro.streaming.readers.EstimateHub.read_stats`.
        """
        with self._write_lock:
            entry = self._entry
            return {
                "version": -1 if entry is None else entry.version,
                "writes": self._writes,
                "timestep": None if entry is None else entry.timestep,
                "covered_steps": None if entry is None else entry.covered_steps,
            }

