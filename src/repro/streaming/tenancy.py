"""Multi-tenant (PRIMO) serving: one covariate stream, ``k`` outcome models.

The PRIMO observation (*Private Regression in Multiple Outcomes*): when
``k`` regression problems share one covariate stream — the same ``x_t``
scored against ``k`` different outcome signals ``y_t^{(1)}..y_t^{(k)}`` —
the expensive part of the released statistic, the ``(d, d)`` second-moment
(Gram) matrix, is *identical* for every problem.  Running ``k`` independent
:class:`~repro.streaming.serving.ShardedStream` fronts privatizes it ``k``
times: ``k·(d² + d)`` tree floats, ``k`` Gram noise draws per step, and a
``k``-way budget split that inflates every tenant's noise variance by
``k²``.  :class:`MultiTenantStream` privatizes it **once**:

* each shard is a :class:`~repro.streaming.serving.TenantShard` — one
  shared Gram tree at ``(ε/2, δ/2)`` (independent of ``k``) plus one cheap
  ``(d,)`` cross tree per tenant at an equal slot of the other half
  (:func:`~repro.privacy.parameters.tenant_budgets`);
* :meth:`MultiTenantStream.observe_batch` routes each
  ``(x, y^{(1)}..y^{(k)})`` block through the shared Gram exactly once and
  fans the outcomes out to the per-tenant cross trees;
* every tenant keeps its own solver and its own
  :class:`~repro.streaming.readers.EstimateHub`, so the whole read-side
  surface — ``reader()`` / ``subscribe()`` / ``wait_for_version()`` —
  works unchanged *per tenant* (:meth:`MultiTenantStream.tenant`);
* merges reuse :func:`~repro.privacy.tree.merge_released` and
  :class:`~repro.privacy.tree.ReleasedMoments` unchanged — the process
  transport ships a tenant shard's releases as the same snapshots the
  single-tenant path ships, just ``k`` of them per shard.

Privacy is per-element composition over the *slot capacity*: one element
is ingested by the Gram tree once (``ε/2``) and by at most ``capacity``
concurrently active cross trees (``capacity · ε/(2·capacity)``), so its
loss is at most ``ε`` under any :meth:`~MultiTenantStream.add_tenant` /
:meth:`~MultiTenantStream.remove_tenant` schedule — a removed tenant's
tree never ingests again, so a reused slot never sees one element twice.
The ledger mirrors this: adds charge a slot, removes refund it
(:meth:`~repro.privacy.accountant.PrivacyAccountant.refund`).

For ``k = 1`` (and the default ``tenant_capacity=1``) both budget pieces
equal ``params.halve()`` bit-exactly, the shard rng children and solver
spawn order match :class:`~repro.streaming.serving.ShardedStream`'s, and
the ingest arithmetic reduces to the single-tenant shard's — so a
one-tenant front is **bit-identical** to the plain sharded path on both
transports (``tests/test_tenancy.py``, ``tests/test_sharded_equivalence.py``).
"""

from __future__ import annotations

import threading

import numpy as np

from .._validation import (
    check_int,
    check_rng,
    check_unit_xy_domain,
    check_vector,
    check_xy_block,
)
from ..core.incremental_regression import PrivIncReg1
from ..exceptions import (
    PrivacyBudgetError,
    ServingError,
    ShardUnavailableError,
    StreamExhaustedError,
    ValidationError,
)
from ..geometry.base import ConvexSet
from ..privacy.accountant import PrivacyAccountant
from ..privacy.parameters import PrivacyParams, tenant_budgets
from ..privacy.tree import MergedRelease, merge_released
from .readers import EstimateHub, ReaderHandle, Subscription
from .serving import ServedEstimate, TenantShard, _check_decay_groups
from .netserve import ShardAddress, ShardHostListener, TcpShardWorker
from .transport import ProcessShardWorker, ShardSpec

__all__ = ["MultiTenantStream", "TenantView"]

#: Ledger label of the shared Gram trees (parallel composition: one charge).
_GRAM_LABEL = "tenants:gram-moments(parallel)"


def _cross_label(name: str) -> str:
    """Ledger label of one tenant's cross-tree slot (charged and refunded)."""
    return f"tenant:{name}:cross-moments"


class TenantView:
    """One tenant's read surface over a :class:`MultiTenantStream`.

    A thin, cheap facade bound to the tenant's own
    :class:`~repro.streaming.readers.EstimateHub`, exposing exactly the
    read API a single-tenant :class:`~repro.streaming.serving.ShardedStream`
    exposes — lock-free cached reads, per-reader handles, pub-sub, version
    waits — so per-tenant consumers never see the multi-tenancy.  Obtained
    from :meth:`MultiTenantStream.tenant`; stays readable (cache and
    stats) after the tenant is removed, though no further publish can
    arrive.
    """

    def __init__(self, name: str, hub: EstimateHub) -> None:
        self.name = name
        self._hub = hub
        self.cache = hub.cache

    def current_estimate(self) -> np.ndarray:
        """The tenant's cached parameter — one lock-free pointer read."""
        return self.cache.get().theta

    def current_served(self) -> ServedEstimate:
        """The cached estimate with version/coverage metadata (lock-free)."""
        return self.cache.get()

    def reader(self) -> ReaderHandle:
        """A per-reader fan-out handle (one per reader thread)."""
        return self._hub.reader()

    def subscribe(self, callback) -> Subscription:
        """Fire ``callback(entry)`` on every publish for this tenant."""
        return self._hub.subscribe(callback)

    def wait_for_version(
        self, version: int, timeout: float | None = None
    ) -> ServedEstimate:
        """Block until this tenant publishes ``version`` (or newer)."""
        return self._hub.wait_for_version(version, timeout=timeout)

    def read_stats(self):
        """One consistent snapshot of this tenant's read fan-out."""
        return self._hub.read_stats()

    @property
    def estimate_version(self) -> int:
        """Completed solves published for this tenant (lock-free)."""
        return self.cache.version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TenantView(name={self.name!r}, version={self.cache.version})"


class MultiTenantStream:
    """The PRIMO serving front: ``k`` tenant models over one shared stream.

    Routes each incoming ``(x, y^{(1)}..y^{(k)})`` block round-robin to
    one of ``K`` :class:`~repro.streaming.serving.TenantShard` workers;
    the shard advances its **shared** Gram tree once and each active
    tenant's cross tree with that tenant's outcome column.  At refresh
    points the Gram releases are merged once and reused for every
    tenant's solve, so ingest and merge cost grow like ``d² + k·d``
    instead of the ``k·d²`` that ``k`` independent
    :class:`~repro.streaming.serving.ShardedStream` fronts pay
    (``benchmarks/bench_primo_serving.py`` measures the gap).

    Synchronous by design: multi-tenant ingestion is the batch-heavy
    production path, and the async/manual queue modes of the
    single-tenant front add nothing per tenant (reads are already
    decoupled through the per-tenant hubs).

    Parameters
    ----------
    constraint:
        The constraint set ``C`` shared by every tenant's solver; fixes
        the dimension.
    params:
        The stream's total ``(ε, δ)`` budget — what one element's
        participation costs *in total*, across the shared Gram and every
        tenant slot (see :func:`~repro.privacy.parameters.tenant_budgets`).
    tenants:
        Initial tenants: an ``int k`` (named ``tenant-0..tenant-{k-1}``)
        or a sequence of unique non-empty names.
    shards:
        Number of shard workers ``K`` (disjoint routing, parallel
        composition — every shard runs at the full budget, exactly as
        the single-tenant front's default).
    horizon:
        Logical stream length ``T``; required (tenant shards are tree
        shards — the PRIMO layer assumes a known horizon).
    tenant_capacity:
        Concurrent-tenant slot count the budget is split across; defaults
        to the initial tenant count.  Fixed for the stream's lifetime —
        it is a privacy parameter (each element may meet up to this many
        cross trees), not a sizing hint.  Leave headroom only if tenants
        will be added at runtime; a larger capacity means a smaller
        per-tenant slot budget.
    decays:
        Declared γ groups for the shared Gram stream, default ``(1.0,)``
        (the plain group only).  Every element enters every group's Gram
        mechanism, so the gram half of the budget is split evenly across
        the groups (sequential composition) — declare only the γ values
        actually served.  Fixed for the stream's lifetime, like
        ``tenant_capacity``.
    tenant_decays:
        Per-tenant γ assignment for the *initial* tenants, aligned with
        ``tenants``; each entry must be a declared group.  ``None``
        assigns every tenant to ``decays[0]``.  A tenant's cross trees
        use its γ too, so its merged moments are consistently weighted;
        later :meth:`add_tenant` calls pick a group via their ``decay``
        argument.
    refresh_every:
        Merge + solve whenever the processed count crosses a multiple of
        this (and at the horizon); ``None`` refreshes every block.
    ingest:
        ``"exact"`` (bit-identical tier) or ``"fast"`` (distributional
        BLAS tier) — the same two tiers as the single-tenant front.
    transport:
        ``"thread"`` (in-process shards), ``"process"`` (one
        interpreter per shard behind a pipe), or ``"tcp"`` (shards
        served by :class:`~repro.streaming.netserve.ShardHostListener`
        hosts, reachable cross-host).  Remote transports ship releases
        back as :class:`~repro.privacy.tree.ReleasedMoments` snapshots,
        ``k`` per shard; all transports build the same mechanisms from
        the same rng children.
    request_timeout:
        Deadline in seconds on every shard RPC (remote transports only;
        same stuck-worker → :class:`~repro.exceptions.ShardTimeoutError`
        → partial-coverage semantics as
        :class:`~repro.streaming.serving.ShardedStream`).
    addresses:
        Shard host listener addresses (``transport="tcp"`` only); shard
        ``i`` connects to ``addresses[i % len(addresses)]``.  ``None``
        boots a private loopback listener owned by this stream.
    shard_horizon:
        Tree capacity per shard; defaults to ``horizon`` so any routing
        imbalance fits.
    beta, fidelity, iteration_cap:
        Forwarded to every tenant's default
        :class:`~repro.core.incremental_regression.PrivIncReg1` solver.
    rng:
        Seed or Generator.  Shard ``i``'s tenant trees use child ``2i``
        of ``rng.spawn(2K)`` (tenant 0) plus its spawned siblings
        (tenants 1..k-1), and its Gram tree uses child ``2i+1``; each
        tenant's solver then spawns one child in tenant order.  For
        ``k = 1`` this is exactly the single-tenant front's consumption,
        which is what makes the one-tenant stream bit-identical to
        :class:`~repro.streaming.serving.ShardedStream`.
    """

    def __init__(
        self,
        constraint: ConvexSet,
        params: PrivacyParams,
        tenants,
        shards: int = 2,
        *,
        horizon: int | None = None,
        tenant_capacity: int | None = None,
        decays: "tuple[float, ...] | None" = None,
        tenant_decays=None,
        refresh_every: int | None = None,
        ingest: str = "exact",
        transport: str = "thread",
        request_timeout: float | None = None,
        addresses=None,
        shard_horizon: int | None = None,
        beta: float = 0.05,
        fidelity: str = "fast",
        iteration_cap: int = 400,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if ingest not in ("exact", "fast"):
            raise ValidationError(f"ingest must be 'exact' or 'fast', got {ingest!r}")
        if transport not in ("thread", "process", "tcp"):
            raise ValidationError(
                f"transport must be 'thread', 'process', or 'tcp', got "
                f"{transport!r}"
            )
        if request_timeout is not None:
            if transport == "thread":
                raise ValidationError(
                    "request_timeout needs a wire to deadline "
                    "(transport='process' or 'tcp'); in-process shard "
                    "calls are plain method calls"
                )
            if not request_timeout > 0:
                raise ValidationError(
                    f"request_timeout must be positive (seconds) or None, "
                    f"got {request_timeout!r}"
                )
        if addresses is not None and transport != "tcp":
            raise ValidationError(
                "addresses only applies to transport='tcp'"
            )
        if horizon is None:
            raise ValidationError(
                "MultiTenantStream needs a horizon (tenant shards are tree "
                "shards; there is no horizon-free PRIMO serving path)"
            )
        if isinstance(tenants, (int, np.integer)) and not isinstance(tenants, bool):
            count = check_int("tenants", tenants, minimum=1)
            names = tuple(f"tenant-{i}" for i in range(count))
        else:
            names = tuple(str(name) for name in tenants)
        if not names:
            raise ValidationError("tenants must name at least one tenant")
        if len(set(names)) != len(names):
            raise ValidationError(f"tenant names must be unique, got {names!r}")
        if any(not name for name in names):
            raise ValidationError("tenant names must be non-empty")
        self.decays = _check_decay_groups(decays)
        if tenant_decays is None:
            tenant_decays = tuple(self.decays[0] for _ in names)
        tenant_decays = tuple(float(g) for g in tenant_decays)
        if len(tenant_decays) != len(names):
            raise ValidationError(
                f"need one decay per tenant: {len(names)} tenants, "
                f"{len(tenant_decays)} tenant_decays"
            )
        for g in tenant_decays:
            if g not in self.decays:
                raise ValidationError(
                    f"tenant_decays entry {g!r} is not a declared γ group "
                    f"(decays={self.decays!r})"
                )

        self.constraint = constraint
        self.params = params
        self.dim = constraint.dim
        self.shards_count = check_int("shards", shards, minimum=1)
        self.horizon = check_int("horizon", horizon, minimum=1)
        self.tenant_capacity = check_int(
            "tenant_capacity",
            len(names) if tenant_capacity is None else tenant_capacity,
            minimum=len(names),
        )
        self.refresh_every = (
            None
            if refresh_every is None
            else check_int("refresh_every", refresh_every, minimum=1)
        )
        self.ingest = ingest
        self.transport = transport
        self.request_timeout = request_timeout
        self._listener: ShardHostListener | None = None
        self._owns_listener = False
        if transport == "tcp":
            if addresses is None:
                self._listener = ShardHostListener()
                self._owns_listener = True
                addresses = [self._listener.address]
            self.addresses = tuple(
                ShardAddress.coerce(address) for address in addresses
            )
        else:
            self.addresses = None
        self.shard_horizon = (
            self.horizon
            if shard_horizon is None
            else check_int("shard_horizon", shard_horizon, minimum=1)
        )
        self._rng = check_rng(rng)
        self._fast = ingest == "fast"
        self._beta = beta
        self._fidelity = fidelity
        self._iteration_cap = iteration_cap

        # The per-slot budget every tenant (initial or added later) runs
        # at; the gram half is spent once, jointly, independent of k.
        gram_budget, slot_budgets = tenant_budgets(params, self.tenant_capacity)
        self._slot_budget = slot_budgets[0]
        #: Tenant → γ group (refreshes solve against the matching Gram).
        self._tenant_decays: dict[str, float] = dict(zip(names, tenant_decays))

        k = len(names)
        children = self._rng.spawn(2 * self.shards_count)
        shard_list: list = []
        try:
            for i in range(self.shards_count):
                # Tenant 0 consumes child 2i itself — the exact child the
                # single-tenant front hands its cross tree — and tenants
                # 1..k-1 consume its spawned siblings (spawning advances
                # the child's spawn counter, never its bit stream, so
                # tenant 0 stays bit-identical at any k).
                base = children[2 * i]
                extras = tuple(base.spawn(k - 1)) if k > 1 else ()
                shard_list.append(
                    self._make_shard(
                        i,
                        (base,) + extras,
                        children[2 * i + 1],
                        names,
                        tenant_decays,
                    )
                )
        except BaseException:
            for shard in shard_list:
                shard.shutdown()
            if self._owns_listener:
                self._listener.close()
            raise
        self._shards = shard_list

        # Ledger: the shared Gram is one parallel-composition charge; each
        # active tenant holds one refundable slot charge.  Fully occupied,
        # the ledger sums back to `params`.
        self.accountant = PrivacyAccountant(params, mode="basic")
        self.accountant.charge(_GRAM_LABEL, gram_budget)
        for name in names:
            self.accountant.charge(_cross_label(name), self._slot_budget)

        # Per-tenant solve + publish state, keyed in tenant (slot) order —
        # the order every shard's released() tuple is indexed by.
        self._solvers: dict[str, PrivIncReg1] = {}
        self._hubs: dict[str, EstimateHub] = {}
        self._views: dict[str, TenantView] = {}
        for name in names:
            self._attach_tenant_state(name)

        self._lock = threading.RLock()
        self._close_lock = threading.Lock()
        self._processed = 0
        self._enqueued = 0
        self._next_shard = 0
        self._last_refresh_t = 0
        self.lost_steps = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _make_shard(self, index, tenant_rngs, gram_rng, names, tenant_decays):
        """One tenant shard on the configured transport (full budget each)."""
        if self.transport in ("process", "tcp"):
            spec = ShardSpec(
                index=index,
                dim=self.dim,
                budget=self.params,
                gram_rng=gram_rng,
                mechanism="tree",
                shard_horizon=self.shard_horizon,
                backend="tenant",
                tenants=tuple(names),
                tenant_rngs=tuple(tenant_rngs),
                tenant_capacity=self.tenant_capacity,
                decays=self.decays,
                tenant_decays=tuple(tenant_decays),
            )
            if self.transport == "tcp":
                return TcpShardWorker(
                    spec,
                    self.addresses[index % len(self.addresses)],
                    request_timeout=self.request_timeout,
                )
            return ProcessShardWorker(
                spec, request_timeout=self.request_timeout
            )
        return TenantShard(
            index=index,
            dim=self.dim,
            budget=self.params,
            tenant_rngs=tenant_rngs,
            gram_rng=gram_rng,
            tenants=names,
            tenant_capacity=self.tenant_capacity,
            shard_horizon=self.shard_horizon,
            decays=self.decays,
            tenant_decays=tuple(tenant_decays),
        )

    def _attach_tenant_state(self, name: str) -> None:
        """Create one tenant's solver + hub + view and publish version 0."""
        solver = PrivIncReg1(
            horizon=self.horizon,
            constraint=self.constraint,
            params=self.params,
            beta=self._beta,
            fidelity=self._fidelity,
            iteration_cap=self._iteration_cap,
            rng=self._rng.spawn(1)[0],
        )
        hub = EstimateHub()
        hub.publish(
            solver.current_estimate(),
            solver.estimate_version,
            timestep=0,
            covered_steps=0,
        )
        self._solvers[name] = solver
        self._hubs[name] = hub
        self._views[name] = TenantView(name, hub)

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------

    def tenants(self) -> tuple[str, ...]:
        """Active tenant names, in slot (merge) order."""
        return tuple(self._views)

    def tenant(self, name: str) -> TenantView:
        """The read surface for one tenant (raises on unknown names)."""
        try:
            return self._views[str(name)]
        except KeyError:
            raise ValidationError(f"unknown tenant {name!r}") from None

    def add_tenant(self, name: str, decay: float | None = None) -> TenantView:
        """Attach a new tenant to a free capacity slot, mid-stream.

        The new tenant's cross trees start empty: its estimates cover
        only elements observed after the add (the merge rescales the
        shared Gram to the tenant's own coverage).  ``decay`` assigns the
        tenant to one of the stream's declared γ groups (default: the
        primary group); groups are fixed at construction.  Charges the
        tenant's slot on the ledger; raises
        :class:`~repro.exceptions.PrivacyBudgetError` when every slot is
        occupied — capacity is a privacy bound, not a sizing hint.
        """
        name = str(name)
        if not name:
            raise ValidationError("tenant names must be non-empty")
        g = self.decays[0] if decay is None else float(decay)
        if g not in self.decays:
            raise ValidationError(
                f"decay {g!r} is not a declared γ group "
                f"(decays={self.decays!r}); declare every served γ up "
                f"front — the gram budget is split across the groups"
            )
        with self._lock:
            self._raise_if_closed()
            if name in self._views:
                raise ValidationError(f"tenant {name!r} already exists")
            if len(self._views) >= self.tenant_capacity:
                raise PrivacyBudgetError(
                    f"all {self.tenant_capacity} tenant slots are occupied; "
                    f"remove a tenant before adding {name!r}"
                )
            self.accountant.charge(_cross_label(name), self._slot_budget)
            # One fresh child per shard slot, spawned regardless of
            # liveness so the rng consumption (and with it every later
            # tenant's noise) never depends on failure history.
            shard_rngs = self._rng.spawn(self.shards_count)
            for shard, shard_rng in zip(self._shards, shard_rngs):
                if not shard.alive:
                    continue
                try:
                    shard.add_tenant(name, shard_rng, decay=g)
                except ShardUnavailableError:
                    self._note_shard_death(shard)
            self._tenant_decays[name] = g
            self._attach_tenant_state(name)
            return self._views[name]

    def remove_tenant(self, name: str) -> None:
        """Retire a tenant: drop its trees, refund its slot on the ledger.

        The refund is sound because the removed tenant's trees never
        ingest again — the ledger tracks the worst-case per-element loss
        of the stream *going forward* (see
        :meth:`~repro.privacy.accountant.PrivacyAccountant.refund`).  The
        tenant's :class:`TenantView` stays readable (cached estimates and
        stats survive) but receives no further publishes; parked
        ``wait_for_version`` callers are released with a
        :class:`~repro.exceptions.ServingError`.
        """
        name = str(name)
        with self._lock:
            self._raise_if_closed()
            if name not in self._views:
                raise ValidationError(f"unknown tenant {name!r}")
            self.accountant.refund(_cross_label(name))
            for shard in self._shards:
                if not shard.alive:
                    continue
                try:
                    shard.remove_tenant(name)
                except ShardUnavailableError:
                    self._note_shard_death(shard)
            self._solvers.pop(name)
            self._hubs.pop(name).close()
            self._views.pop(name)
            self._tenant_decays.pop(name, None)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def observe(self, x: np.ndarray, ys) -> dict[str, np.ndarray]:
        """Ingest one point with one outcome per tenant (a block of one).

        ``ys`` is a length-``k`` sequence in :meth:`tenants` order (a
        bare scalar is accepted when there is exactly one tenant).
        Returns the cached per-tenant estimates.
        """
        x = check_vector("x", x, dim=self.dim)
        if np.isscalar(ys) or getattr(ys, "ndim", None) == 0:
            ys = [float(ys)]
        row = check_vector("ys", ys, dim=len(self._views))
        return self.observe_batch(x[None, :], row[None, :])

    def observe_batch(self, xs: np.ndarray, ys: np.ndarray) -> dict[str, np.ndarray]:
        """Ingest a block: ``(n, d)`` covariates, ``(n, k)`` outcomes.

        One column per active tenant, in :meth:`tenants` order (a 1-D
        ``ys`` is accepted when there is exactly one tenant).  The block
        is validated and reserved against the horizon atomically, routed
        whole to one shard — which advances the shared Gram tree once and
        every tenant's cross tree — then any due refresh solves all
        tenants off the same merged Gram.  Returns the cached per-tenant
        estimates.
        """
        self._raise_if_closed()
        with self._lock:
            k = len(self._views)
            if k == 0:
                raise ServingError(
                    "no active tenants; add_tenant() before observing"
                )
            xs2 = np.asarray(xs, dtype=float)
            if xs2.ndim != 2:
                raise ValidationError(
                    f"X must be a 2-D (n, d) block, got shape {xs2.shape}"
                )
            Y = np.asarray(ys, dtype=float)
            if Y.ndim == 1 and k == 1:
                Y = Y[:, None]
            if Y.shape != (xs2.shape[0], k):
                raise ValidationError(
                    f"ys must be an ({xs2.shape[0]}, {k}) outcome block — one "
                    f"column per active tenant — got shape {np.shape(ys)}"
                )
            xs2, _ = check_xy_block(xs2, Y[:, 0], dim=self.dim)
            if not np.all(np.isfinite(Y)):
                raise ValidationError("batch must contain only finite entries")
            # One domain sweep covers all k columns: ‖x‖ ≤ 1 once, |y| ≤ 1
            # over the flattened outcome block.
            check_unit_xy_domain("MultiTenantStream", xs2, Y.ravel())
            n = xs2.shape[0]
            if self._enqueued + n > self.horizon:
                raise StreamExhaustedError(
                    f"MultiTenantStream configured for horizon {self.horizon} "
                    f"received a block of {n} points at logical step "
                    f"{self._enqueued}"
                )
            self._enqueued += n
            try:
                self._ingest_block(xs2, Y)
            except BaseException:
                self._enqueued -= n
                raise
            if self._should_refresh():
                self._refresh()
        return self.estimates()

    def _ingest_block(self, xs: np.ndarray, Y: np.ndarray) -> None:
        shard = self._route()
        try:
            shard.ingest(xs, Y, self._fast)
        except ShardUnavailableError:
            self._note_shard_death(shard)
            raise
        self._processed += xs.shape[0]

    def _route(self):
        """Round-robin over live shards (same rule as the single-tenant front)."""
        start = self._next_shard
        self._next_shard = (self._next_shard + 1) % self.shards_count
        for offset in range(self.shards_count):
            shard = self._shards[(start + offset) % self.shards_count]
            if shard.alive:
                return shard
        raise ShardUnavailableError("every shard is dead; nothing can ingest")

    def _should_refresh(self) -> bool:
        if self.refresh_every is None:
            return True
        if self._processed >= self.horizon:
            return True
        return (
            self._processed // self.refresh_every
            > self._last_refresh_t // self.refresh_every
        )

    # ------------------------------------------------------------------
    # Merge + solve
    # ------------------------------------------------------------------

    def _released_pairs(self):
        """Per-shard (cross tuple, gram) handles; dead shards as (None, None)."""
        pairs = []
        for shard in self._shards:
            if not shard.alive:
                self._note_shard_death(shard)
                pairs.append((None, None))
                continue
            try:
                pairs.append(shard.released())
            except ShardUnavailableError:
                self._note_shard_death(shard)
                pairs.append((None, None))
        return pairs

    def _refresh(self) -> None:
        """Merge the shared Gram once, solve every tenant against it.

        The PRIMO merge economy: one ``(d, d)`` Gram merge serves all
        ``k`` solves; each tenant only merges its own ``(d,)`` crosses.
        A tenant added mid-stream has cross coverage behind the Gram's;
        its solve rescales the merged Gram to the tenant's own covered
        mass (the unbiased second-moment estimate over its window).  The
        rescale is skipped — not applied with factor 1.0 — whenever the
        coverages agree, which keeps from-the-start tenants (and with
        them the ``k = 1`` stream) bit-identical to the single-tenant
        path.  Tenants with zero coverage keep their previous estimate.
        """
        pairs = self._released_pairs()
        # One Gram merge per declared γ group, each reused by every tenant
        # assigned to that group — the PRIMO economy, now per weighting.
        grams = {
            g: merge_released(
                [gr[gi] if gr is not None else None for _, gr in pairs],
                strict=False,
            )
            for gi, g in enumerate(self.decays)
        }
        for j, (name, solver) in enumerate(self._solvers.items()):
            cross = merge_released(
                [c[j] if c is not None else None for c, _ in pairs],
                strict=False,
            )
            covered = cross.covered_steps
            if covered == 0:
                continue
            gram = grams[self._tenant_decays[name]]
            gram_value = gram.value
            # Coverage (and under γ < 1, effective weight) can differ
            # between a mid-stream tenant's crosses and the shared Gram;
            # rescale to the tenant's own weight.  Skipped — not applied
            # with factor 1.0 — whenever the weights agree, which keeps
            # from-the-start tenants bit-identical to the single-tenant
            # path.
            weight = cross.covered_weight
            if weight != gram.covered_weight:
                gram_value = gram_value * (weight / gram.covered_weight)
            t_solve = weight if weight != covered else covered
            theta = solver.refresh_from_released(t_solve, gram_value, cross.value)
            self._hubs[name].publish(
                theta,
                solver.estimate_version,
                timestep=self._processed,
                covered_steps=covered,
            )
        self._last_refresh_t = self._processed

    def merged_moments(self, name: str) -> tuple[MergedRelease, MergedRelease]:
        """One tenant's merged (cross, gram) releases right now.

        Post-processing of already-released sums — free to call; the
        conformance suite compares these against per-shard replays and
        against the single-tenant front's merges.
        """
        name = str(name)
        with self._lock:
            if name not in self._views:
                raise ValidationError(f"unknown tenant {name!r}")
            j = list(self._views).index(name)
            gi = self.decays.index(self._tenant_decays[name])
            pairs = self._released_pairs()
            cross = merge_released(
                [c[j] if c is not None else None for c, _ in pairs],
                strict=False,
            )
            gram = merge_released(
                [g[gi] if g is not None else None for _, g in pairs],
                strict=False,
            )
            return cross, gram

    # ------------------------------------------------------------------
    # Reads / lifecycle
    # ------------------------------------------------------------------

    def estimates(self) -> dict[str, np.ndarray]:
        """Every tenant's cached parameter (lock-free reads, no solve)."""
        return {name: view.current_estimate() for name, view in self._views.items()}

    def flush(self) -> dict[str, ServedEstimate]:
        """Solve through everything processed; return per-tenant estimates."""
        self._raise_if_closed()
        with self._lock:
            if self._processed > self._last_refresh_t:
                self._refresh()
            return {
                name: view.current_served() for name, view in self._views.items()
            }

    def close(self) -> None:
        """Flush, stop every shard worker, and refuse further ingestion.

        Idempotent under concurrency (the whole teardown runs under a
        dedicated lock).  Tenant views stay readable after close; parked
        waiters are released with a
        :class:`~repro.exceptions.ServingError`.
        """
        with self._close_lock:
            if self._closed:
                return
            try:
                self.flush()
            finally:
                self._closed = True
                for shard in self._shards:
                    shard.shutdown()
                if self._owns_listener:
                    self._listener.close()
                for hub in self._hubs.values():
                    hub.close()

    def __enter__(self) -> "MultiTenantStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _raise_if_closed(self) -> None:
        if self._closed:
            raise ServingError("MultiTenantStream is closed")

    @property
    def steps_ingested(self) -> int:
        """Points fully processed into shard mechanisms (logical ``t``)."""
        return self._processed

    @property
    def steps_enqueued(self) -> int:
        """Points accepted at the API boundary (sync front: == ingested)."""
        return self._enqueued

    def shard_states(self) -> list[dict]:
        """Per-shard liveness and load snapshot (diagnostics)."""
        with self._lock:
            return [
                {"index": s.index, "alive": s.alive, "steps": s.steps}
                for s in self._shards
            ]

    def memory_floats(self) -> int:
        """Floats held by the shard mechanisms: ``K·O((d² + k·d) log T)``.

        The PRIMO memory economy — ``k`` independent sharded fronts hold
        ``k·K·O(d² log T)`` instead; ``bench_primo_serving.py`` records
        both.
        """
        with self._lock:
            total = 0
            for shard in self._shards:
                try:
                    total += shard.memory_floats()
                except ShardUnavailableError:
                    self._note_shard_death(shard)
            return total

    def kill_shard(self, index: int) -> None:
        """Simulate a shard worker dying (its mass is lost; merges degrade).

        Same partial-coverage contract as the single-tenant front; the
        loss applies to *every* tenant at once, because the shard held
        one sub-stream shared by all of them.
        """
        index = check_int("index", index, minimum=0)
        if index >= self.shards_count:
            raise ValidationError(
                f"shard index {index} out of range [0, {self.shards_count})"
            )
        with self._lock:
            shard = self._shards[index]
            shard.kill()
            self._note_shard_death(shard)

    def _note_shard_death(self, shard) -> None:
        if not shard.alive and not shard.lost_accounted:
            shard.lost_accounted = True
            self.lost_steps += shard.steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiTenantStream(tenants={len(self._views)}/"
            f"{self.tenant_capacity}, shards={self.shards_count}, "
            f"dim={self.dim}, horizon={self.horizon}, t={self._processed})"
        )
