"""The process shard transport: serving workers in their own interpreters.

:class:`~repro.streaming.serving.ShardedStream` splits one logical stream
across ``K`` shard workers.  With the default in-process transport the
workers share the parent's interpreter, so ingest throughput is capped by
the GIL except where BLAS releases it.  This module provides the
alternative ``transport="process"`` backend: each shard's mechanisms live
in a **separate Python process**, driven over a ``multiprocessing``
command/response pipe, so shard ingestion runs on real cores.

What crosses the pipe — and what never does
-------------------------------------------
* **Down** (parent → worker): a one-time picklable :class:`ShardSpec`
  (budget, rng children, mechanism/backend configuration, and — for the
  projected backend — the front-drawn shared ``Φ``), then routed data
  blocks as commands.
* **Up** (worker → parent): at refresh points, the shard's released
  moments as compact :class:`~repro.privacy.tree.ReleasedMoments`
  snapshots — the released statistic (``O(m)`` / ``O(m²)`` floats) with
  its variance accounting, **never** the tree state (``O(m² log T)``) and
  never raw data back.  This is the serialize-the-sketch-not-the-data
  pattern: the expensive object stays where it was built, only the
  additive release travels.

Why the privacy and serving analyses survive the boundary
---------------------------------------------------------
The merge rule (:func:`~repro.privacy.tree.merge_released`) consumes only
each shard's released sum, noise variance, step count, and shape — all
frozen losslessly into the snapshot (``float64`` pickles exactly), so a
merge over pipe-shipped snapshots is bit-identical to a merge over the
live mechanisms.  Each worker builds its mechanisms from the same spawned
rng children the in-process transport would use, so the two transports
consume randomness identically: under ``ingest="exact"`` a ``K = 1``
process server stays bit-identical to the plain batched path, and thread
and process servers under one seed produce identical merged releases
(``tests/test_process_serving.py``).  Privacy needs even less: each
shard's tree is a complete ``(ε, δ)`` mechanism on its own sub-stream,
and everything the parent does with the snapshots is post-processing.

Fault semantics
---------------
:meth:`ProcessShardWorker.kill` SIGKILLs the worker — deliberately
un-graceful, to model a crash.  A worker that dies *uncommanded* is
detected on the next pipe interaction: the parent marks the shard dead and
raises :class:`~repro.exceptions.ShardUnavailableError`; the serving front
then applies its documented partial-coverage semantics (the dead shard's
ingested mass is counted into ``lost_steps``, merges cover the survivors,
``restart_shard`` spawns a fresh process over a fresh disjoint sub-stream).
Command-level failures (validation, horizon) are *not* faults: the worker
catches them, ships the exception back, and keeps serving — the tree's
block-atomic rejection guarantees hold unchanged across the pipe.

Pickling requirements mirror :mod:`repro.streaming.fleet`'s process-pool
spec plumbing: everything in the spawn payload must be picklable
(budgets, numpy Generators, and the built-in projection types all are; a
custom ``projection`` object must be too).  Workers default to the
``"spawn"`` start method — fork-safety of a threaded parent (async mode,
group pools) is exactly the kind of thing this transport must not gamble
on.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from ..exceptions import ShardUnavailableError, ValidationError
from ..privacy.parameters import PrivacyParams
from ..privacy.tree import ReleasedMoments

__all__ = ["ProcessShardWorker", "ShardSpec"]

#: Default multiprocessing start method for shard workers.  ``"spawn"`` is
#: slower to boot but safe under threaded parents on every platform; pass
#: ``start_method="fork"`` to :class:`ProcessShardWorker` on POSIX when
#: boot latency matters more.
DEFAULT_START_METHOD = "spawn"


@dataclass(frozen=True)
class ShardSpec:
    """Picklable recipe for one shard worker (the spawn payload).

    The process transport never pickles a live mechanism: the worker
    *rebuilds* its :class:`~repro.streaming.serving.MomentShard` from this
    spec inside the child interpreter, consuming the shipped rng children
    exactly as the in-process transport would — which is what keeps the
    two transports' noise streams identical.  For ``backend="projected"``
    the spec carries the front-drawn shared projection object itself, so
    every spawned worker (and any restart) re-attaches to the *same*
    ``Φ`` — the one invariant Algorithm 3's sharding adds.

    Mirrors the pickling discipline of
    :class:`~repro.streaming.fleet.ReplicateSpec`: every field must be
    picklable (all library types used here are).
    """

    index: int
    dim: int
    budget: PrivacyParams
    cross_rng: "np.random.Generator | None" = None
    gram_rng: "np.random.Generator | None" = None
    mechanism: str = "tree"
    shard_horizon: int | None = None
    backend: str = "moment"
    projection: object | None = None
    #: Multi-tenant (PRIMO) shards: active tenant names, one spawned rng
    #: per tenant (the front computes them, so both transports consume
    #: randomness identically), and the slot capacity.  ``cross_rng`` is
    #: unused for tenant shards — the per-tenant rngs replace it.
    tenants: "tuple[str, ...] | None" = None
    tenant_rngs: "tuple[np.random.Generator, ...] | None" = None
    tenant_capacity: int | None = None

    def build(self):
        """Construct the shard worker this spec describes (child side)."""
        # Imported here, not at module top: the parent-side transport layer
        # must stay importable from serving.py without a cycle, and the
        # child pays the serving import only once, at build time.
        from .serving import MomentShard, ProjectedMomentShard, TenantShard

        if self.backend == "tenant":
            if self.tenants is None or self.tenant_rngs is None:
                raise ValidationError(
                    "ShardSpec(backend='tenant') requires the tenant names "
                    "and per-tenant rngs in the spawn payload"
                )
            return TenantShard(
                index=self.index,
                dim=self.dim,
                budget=self.budget,
                tenant_rngs=self.tenant_rngs,
                gram_rng=self.gram_rng,
                tenants=self.tenants,
                tenant_capacity=self.tenant_capacity,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
            )
        if self.backend == "projected":
            if self.projection is None:
                raise ValidationError(
                    "ShardSpec(backend='projected') requires the shared "
                    "projection in the spawn payload"
                )
            return ProjectedMomentShard(
                index=self.index,
                dim=self.dim,
                budget=self.budget,
                cross_rng=self.cross_rng,
                gram_rng=self.gram_rng,
                projection=self.projection,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
            )
        return MomentShard(
            index=self.index,
            dim=self.dim,
            budget=self.budget,
            cross_rng=self.cross_rng,
            gram_rng=self.gram_rng,
            mechanism=self.mechanism,
            shard_horizon=self.shard_horizon,
        )


def _safe_send(conn, message) -> None:
    """Send a reply, degrading unpicklable payloads to a stringified error."""
    try:
        conn.send(message)
    except Exception as exc:  # pragma: no cover - defensive wire path
        conn.send(
            (
                "err",
                ShardUnavailableError(
                    f"worker reply could not be serialized: {exc}"
                ),
            )
        )


def _shard_worker_main(spec: ShardSpec, conn) -> None:
    """The worker process: build the shard, then serve pipe commands.

    Top-level (not a closure) so the ``"spawn"`` start method can import
    it.  Protocol: the parent sends ``(command, payload)`` tuples and the
    worker replies ``("ok", result)`` or ``("err", exception)``; command
    failures never kill the worker — the shard's block-atomic rejection
    semantics make a retry safe, exactly as in-process.
    """
    try:
        shard = spec.build()
    except BaseException as exc:
        _safe_send(conn, ("err", exc))
        conn.close()
        return
    _safe_send(conn, ("ok", spec.index))  # ready handshake
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            return  # parent vanished; daemonic exit
        try:
            if command == "close":
                _safe_send(conn, ("ok", None))
                conn.close()
                return
            if command == "ingest":
                xs, ys, fast = payload
                shard.ingest(xs, ys, fast)
                result = shard.steps
            elif command == "released":
                # Snapshot, never the live mechanisms: the wire carries the
                # released statistic (O(m)/O(m²)), not the tree (O(m² log T)
                # plus generator state).  A tenant shard's cross slot is a
                # tuple (one release per tenant) — same snapshot type, same
                # wire format, just k of them.
                cross, gram = shard.released()
                if isinstance(cross, tuple):
                    cross_result = tuple(
                        mechanism.released_moments() for mechanism in cross
                    )
                else:
                    cross_result = cross.released_moments()
                result = (cross_result, gram.released_moments())
            elif command == "tenant":
                action, name, extra = payload
                if action == "add":
                    shard.add_tenant(name, extra)
                elif action == "remove":
                    shard.remove_tenant(name)
                elif action != "list":
                    raise ValidationError(
                        f"unknown tenant action {action!r}"
                    )
                result = shard.tenants()
            elif command == "memory":
                result = shard.memory_floats()
            elif command == "describe":
                projection = getattr(shard, "projection", None)
                result = {
                    "index": shard.index,
                    "backend": shard.backend,
                    "mechanism": shard.mechanism,
                    "moment_dim": shard.moment_dim,
                    "steps": shard.steps,
                    "pid": mp.current_process().pid,
                    "projection_matrix": (
                        None
                        if projection is None
                        else np.array(projection.matrix, dtype=float)
                    ),
                }
            else:
                raise ValidationError(f"unknown worker command {command!r}")
        except BaseException as exc:
            _safe_send(conn, ("err", exc))
        else:
            _safe_send(conn, ("ok", result))


class ProcessShardWorker:
    """One shard worker running in its own process, driven over a pipe.

    Exposes the same surface the serving front uses on an in-process
    :class:`~repro.streaming.serving.MomentShard` — ``index`` / ``alive``
    / ``steps`` / ``budget`` attributes, :meth:`ingest`,
    :meth:`released`, :meth:`memory_floats`, :meth:`kill`,
    :meth:`shutdown` — so :class:`~repro.streaming.serving.ShardedStream`
    treats the two transports uniformly.  ``steps`` is a parent-side
    mirror updated from ingest acknowledgements, which is what keeps the
    lost-mass accounting exact even after the worker is gone.

    Not thread-safe on its own: the serving front serializes all pipe
    access per worker (its ingestion lock, or one drain task per shard in
    group mode).

    Parameters
    ----------
    spec:
        The picklable worker recipe (see :class:`ShardSpec`).
    start_method:
        ``multiprocessing`` start method; defaults to
        :data:`DEFAULT_START_METHOD` (``"spawn"``).
    """

    def __init__(self, spec: ShardSpec, start_method: str | None = None) -> None:
        self.spec = spec
        self.index = spec.index
        self.budget = spec.budget
        self.backend = spec.backend
        self.mechanism = spec.mechanism
        self.steps = 0
        self.alive = False
        # Set by the serving front once this worker's mass is credited to
        # lost_steps (same flag as the in-process MomentShard).
        self.lost_accounted = False
        ctx = mp.get_context(start_method or DEFAULT_START_METHOD)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(spec, child_conn),
            name=f"repro-shard-{spec.index}",
            daemon=True,
        )
        try:
            self._process.start()
        except BaseException:
            # A start() failure (e.g. the spec refuses to pickle under
            # spawn) must not leak the pipe fds.
            child_conn.close()
            self._reap()
            raise
        child_conn.close()
        # Ready handshake: surfaces child-side construction errors (bad
        # spec, unpicklable projection) eagerly, in the constructor.
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            self._reap()
            raise ShardUnavailableError(
                f"shard {self.index} worker process died during startup"
            ) from exc
        if status == "err":
            self._reap()
            raise payload
        self.alive = True

    # ------------------------------------------------------------------
    # The MomentShard surface
    # ------------------------------------------------------------------

    def ingest(self, xs: np.ndarray, ys: np.ndarray, fast: bool) -> None:
        """Route one block through the pipe; blocks until acknowledged.

        Failure semantics match the in-process shard: a command-level
        error (validation, horizon) leaves the worker's trees unconsumed
        and the worker alive, so a retry is safe; a *dead worker* raises
        :class:`~repro.exceptions.ShardUnavailableError` after marking
        the shard dead (partial-coverage accounting upstream).
        """
        self.steps = int(self._request("ingest", (xs, ys, bool(fast))))

    def released(self) -> tuple[ReleasedMoments, ReleasedMoments]:
        """The (cross, gram) released moments, snapshotted across the pipe.

        One round trip for both snapshots; each merges interchangeably
        with live mechanisms (:func:`~repro.privacy.tree.merge_released`).
        """
        cross, gram = self._request("released", None)
        return cross, gram

    @property
    def cross(self) -> ReleasedMoments:
        """Snapshot of the cross-moment release (diagnostics; one RPC)."""
        return self.released()[0]

    @property
    def gram(self) -> ReleasedMoments:
        """Snapshot of the second-moment release (diagnostics; one RPC)."""
        return self.released()[1]

    def add_tenant(self, name: str, rng: np.random.Generator) -> None:
        """Attach a tenant cross tree on the worker (tenant backend only).

        The generator crosses the pipe by pickle, so the worker-side tree
        consumes exactly the stream this generator would produce locally —
        the same bit-identity contract as initial construction.
        """
        self._request("tenant", ("add", name, rng))

    def remove_tenant(self, name: str) -> None:
        """Drop a tenant's cross tree on the worker (tenant backend only)."""
        self._request("tenant", ("remove", name, None))

    def tenants(self) -> tuple[str, ...]:
        """Active tenant names on the worker, in slot order."""
        return tuple(self._request("tenant", ("list", None, None)))

    def memory_floats(self) -> int:
        """Floats held by the worker's mechanisms (0 once dead)."""
        if not self.alive:
            return 0
        return int(self._request("memory", None))

    def describe(self) -> dict:
        """Worker-side identity snapshot (backend, dims, pid, Φ matrix)."""
        return self._request("describe", None)

    def kill(self) -> None:
        """SIGKILL the worker — the crash-injection path.

        Deliberately un-graceful (no close command): models a worker
        death, so the parent-side books (``steps``) are all that remains,
        exactly as after a real crash.  Idempotent.
        """
        if self._process is not None and self._process.is_alive():
            self._process.kill()
        self._reap()

    def shutdown(self) -> None:
        """Gracefully stop the worker (close command, join, reap).

        Idempotent, and safe after :meth:`kill` or a detected crash."""
        if self.alive:
            try:
                self._conn.send(("close", None))
                self._conn.recv()  # "ok" — worker is draining out
            except (EOFError, OSError):
                pass
        if self._process is not None and self._process.is_alive():
            self._process.join(timeout=5.0)
            if self._process.is_alive():  # pragma: no cover - defensive
                self._process.kill()
        self._reap()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _request(self, command: str, payload):
        if not self.alive:
            raise ShardUnavailableError(
                f"shard {self.index} process worker is dead"
            )
        try:
            self._conn.send((command, payload))
            status, result = self._conn.recv()
        except (EOFError, OSError) as exc:
            self._reap()
            raise ShardUnavailableError(
                f"shard {self.index} worker process died (command "
                f"{command!r}); merges degrade to partial coverage until "
                f"restart_shard({self.index})"
            ) from exc
        if status == "err":
            raise result
        return result

    def _reap(self) -> None:
        """Mark dead and release OS resources (join + close pipe).

        Idempotent: the process handle is dropped once closed."""
        self.alive = False
        if self._process is not None:
            if self._process.is_alive():
                self._process.join(timeout=5.0)
            if not self._process.is_alive():
                self._process.close()
                self._process = None
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessShardWorker(index={self.index}, backend={self.backend!r}, "
            f"alive={self.alive}, steps={self.steps})"
        )
