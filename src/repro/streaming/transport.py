"""The process shard transport: serving workers in their own interpreters.

:class:`~repro.streaming.serving.ShardedStream` splits one logical stream
across ``K`` shard workers.  With the default in-process transport the
workers share the parent's interpreter, so ingest throughput is capped by
the GIL except where BLAS releases it.  This module provides the
alternative ``transport="process"`` backend: each shard's mechanisms live
in a **separate Python process**, driven over a ``multiprocessing``
command/response pipe, so shard ingestion runs on real cores.

What crosses the pipe — and what never does
-------------------------------------------
* **Down** (parent → worker): a one-time picklable :class:`ShardSpec`
  (budget, rng children, mechanism/backend configuration, and — for the
  projected backend — the front-drawn shared ``Φ``), then routed data
  blocks as commands.
* **Up** (worker → parent): at refresh points, the shard's released
  moments as compact :class:`~repro.privacy.tree.ReleasedMoments`
  snapshots — the released statistic (``O(m)`` / ``O(m²)`` floats) with
  its variance accounting, **never** the tree state (``O(m² log T)``) and
  never raw data back.  This is the serialize-the-sketch-not-the-data
  pattern: the expensive object stays where it was built, only the
  additive release travels.

Why the privacy and serving analyses survive the boundary
---------------------------------------------------------
The merge rule (:func:`~repro.privacy.tree.merge_released`) consumes only
each shard's released sum, noise variance, step count, and shape — all
frozen losslessly into the snapshot (``float64`` pickles exactly), so a
merge over pipe-shipped snapshots is bit-identical to a merge over the
live mechanisms.  Each worker builds its mechanisms from the same spawned
rng children the in-process transport would use, so the two transports
consume randomness identically: under ``ingest="exact"`` a ``K = 1``
process server stays bit-identical to the plain batched path, and thread
and process servers under one seed produce identical merged releases
(``tests/test_process_serving.py``).  Privacy needs even less: each
shard's tree is a complete ``(ε, δ)`` mechanism on its own sub-stream,
and everything the parent does with the snapshots is post-processing.

Fault semantics
---------------
:meth:`ProcessShardWorker.kill` SIGKILLs the worker — deliberately
un-graceful, to model a crash.  A worker that dies *uncommanded* is
detected on the next pipe interaction: the parent marks the shard dead and
raises :class:`~repro.exceptions.ShardUnavailableError`; the serving front
then applies its documented partial-coverage semantics (the dead shard's
ingested mass is counted into ``lost_steps``, merges cover the survivors,
``restart_shard`` spawns a fresh process over a fresh disjoint sub-stream).
A worker that is *alive but stuck* (wedged in a huge BLAS call, poisoned
by a pathological command) is covered by the same fault model: every
parent→worker round trip carries an optional deadline
(``request_timeout``, enforced with ``conn.poll`` before the reply
``recv``), and a missed deadline kills the worker and raises
:class:`~repro.exceptions.ShardTimeoutError` — a
:class:`~repro.exceptions.ShardUnavailableError` subclass, so upstream a
stuck worker is indistinguishable from a crashed one and folds into the
identical partial-coverage accounting.  Command-level failures
(validation, horizon) are *not* faults: the worker catches them, ships
the exception back, and keeps serving — the tree's block-atomic
rejection guarantees hold unchanged across the pipe.

The command/response protocol itself (the ``(command, payload)`` →
``("ok" | "err", result)`` framing served by :func:`dispatch_command`) is
transport-agnostic: :mod:`repro.streaming.netserve` serves the same
commands over length-prefixed TCP frames, so shards can run on separate
hosts behind the same :class:`ShardRpcClient` surface.

Pickling requirements mirror :mod:`repro.streaming.fleet`'s process-pool
spec plumbing: everything in the spawn payload must be picklable
(budgets, numpy Generators, and the built-in projection types all are; a
custom ``projection`` object must be too).  Workers default to the
``"spawn"`` start method — fork-safety of a threaded parent (async mode,
group pools) is exactly the kind of thing this transport must not gamble
on.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import (
    ShardTimeoutError,
    ShardUnavailableError,
    ValidationError,
)
from ..privacy.parameters import PrivacyParams
from ..privacy.tree import ReleasedMoments

__all__ = ["ProcessShardWorker", "ShardRpcClient", "ShardSpec", "dispatch_command"]

#: Default multiprocessing start method for shard workers.  ``"spawn"`` is
#: slower to boot but safe under threaded parents on every platform; pass
#: ``start_method="fork"`` to :class:`ProcessShardWorker` on POSIX when
#: boot latency matters more.
DEFAULT_START_METHOD = "spawn"

#: Deadline on the ready handshake (worker boot).  Distinct from (and far
#: above) any sensible ``request_timeout``: boot pays interpreter spawn
#: plus the numpy/scipy imports, which on a loaded host can take seconds —
#: a per-command deadline tuned to steady-state RPCs would false-kill
#: every worker at startup.
BOOT_TIMEOUT = 120.0

#: Default bound on the graceful-close handshake.  ``shutdown()`` must
#: never hang on a worker wedged mid-command: after this many seconds the
#: close falls through to a kill.
SHUTDOWN_TIMEOUT = 5.0


@dataclass(frozen=True)
class ShardSpec:
    """Picklable recipe for one shard worker (the spawn payload).

    The process transport never pickles a live mechanism: the worker
    *rebuilds* its :class:`~repro.streaming.serving.MomentShard` from this
    spec inside the child interpreter, consuming the shipped rng children
    exactly as the in-process transport would — which is what keeps the
    two transports' noise streams identical.  For ``backend="projected"``
    the spec carries the front-drawn shared projection object itself, so
    every spawned worker (and any restart) re-attaches to the *same*
    ``Φ`` — the one invariant Algorithm 3's sharding adds.

    Mirrors the pickling discipline of
    :class:`~repro.streaming.fleet.ReplicateSpec`: every field must be
    picklable (all library types used here are).
    """

    index: int
    dim: int
    budget: PrivacyParams
    cross_rng: "np.random.Generator | None" = None
    gram_rng: "np.random.Generator | None" = None
    mechanism: str = "tree"
    shard_horizon: int | None = None
    backend: str = "moment"
    projection: object | None = None
    #: Non-stationarity knobs (mutually exclusive): forgetting factor
    #: ``γ ∈ (0, 1]`` or sliding window ``W`` — shipped verbatim so the
    #: worker-side :func:`~repro.privacy.release.make_release_mechanism`
    #: builds the same decayed/windowed mechanisms the in-process
    #: transport would.
    decay: float | None = None
    window: "int | float | None" = None
    #: Multi-tenant (PRIMO) shards: active tenant names, one spawned rng
    #: per tenant (the front computes them, so both transports consume
    #: randomness identically), and the slot capacity.  ``cross_rng`` is
    #: unused for tenant shards — the per-tenant rngs replace it.
    #: ``decays`` declares the shared-Gram γ groups, ``tenant_decays``
    #: assigns each initial tenant to one of them.
    tenants: "tuple[str, ...] | None" = None
    tenant_rngs: "tuple[np.random.Generator, ...] | None" = None
    tenant_capacity: int | None = None
    decays: "tuple[float, ...] | None" = None
    tenant_decays: "tuple[float, ...] | None" = None
    #: Bundle-generic payload: the number of instrument columns (IV
    #: backend) and the per-statistic rng children in bundle order.  The
    #: legacy ``cross_rng``/``gram_rng`` pair remains the wire format for
    #: two-entry bundles; ``rngs`` carries wider bundles without growing
    #: a field per statistic.
    instruments: int | None = None
    rngs: "tuple[np.random.Generator, ...] | None" = None

    def build(self):
        """Construct the shard worker this spec describes (child side)."""
        # Imported here, not at module top: the parent-side transport layer
        # must stay importable from serving.py without a cycle, and the
        # child pays the serving import only once, at build time.
        from .serving import (
            IVMomentShard,
            MomentShard,
            ProjectedMomentShard,
            SketchShard,
            TenantShard,
        )

        if self.backend == "tenant":
            if self.tenants is None or self.tenant_rngs is None:
                raise ValidationError(
                    "ShardSpec(backend='tenant') requires the tenant names "
                    "and per-tenant rngs in the spawn payload"
                )
            return TenantShard(
                index=self.index,
                dim=self.dim,
                budget=self.budget,
                tenant_rngs=self.tenant_rngs,
                gram_rng=self.gram_rng,
                tenants=self.tenants,
                tenant_capacity=self.tenant_capacity,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
                decays=self.decays,
                tenant_decays=self.tenant_decays,
            )
        if self.backend == "iv":
            if self.instruments is None or self.rngs is None:
                raise ValidationError(
                    "ShardSpec(backend='iv') requires the instrument count "
                    "and per-statistic rngs in the spawn payload"
                )
            return IVMomentShard(
                index=self.index,
                dim=self.dim,
                budget=self.budget,
                rngs=self.rngs,
                instruments=self.instruments,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
                decay=self.decay,
                window=self.window,
            )
        if self.backend in ("projected", "sketch"):
            if self.projection is None:
                raise ValidationError(
                    f"ShardSpec(backend={self.backend!r}) requires the shared "
                    "projection in the spawn payload"
                )
            shard_cls = (
                SketchShard if self.backend == "sketch" else ProjectedMomentShard
            )
            return shard_cls(
                index=self.index,
                dim=self.dim,
                budget=self.budget,
                cross_rng=self.cross_rng,
                gram_rng=self.gram_rng,
                projection=self.projection,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
                decay=self.decay,
                window=self.window,
            )
        return MomentShard(
            index=self.index,
            dim=self.dim,
            budget=self.budget,
            cross_rng=self.cross_rng,
            gram_rng=self.gram_rng,
            mechanism=self.mechanism,
            shard_horizon=self.shard_horizon,
            decay=self.decay,
            window=self.window,
        )


def _safe_send(conn, message) -> bool:
    """Send a reply, degrading unpicklable payloads to a stringified error.

    Returns ``False`` when not even the degraded error reply could be
    delivered (broken pipe, parent gone): the *fallback* send used to be
    unguarded, so a reply failure after the parent vanished raised out of
    the worker loop and killed the worker with a traceback instead of the
    clean daemonic exit every other parent-gone path takes.  Callers must
    treat ``False`` as "stop serving".
    """
    try:
        conn.send(message)
        return True
    except Exception as exc:
        try:
            conn.send(
                (
                    "err",
                    ShardUnavailableError(
                        f"worker reply could not be serialized: {exc}"
                    ),
                )
            )
            return True
        except Exception:  # parent vanished mid-reply; exit cleanly
            return False


def dispatch_command(shard, command: str, payload):
    """Execute one worker command against a built shard; return the result.

    The single definition of the command protocol, shared by every
    transport that serves shards remotely — the ``multiprocessing`` pipe
    worker below and the TCP listener in
    :mod:`repro.streaming.netserve` — so a shard behaves identically
    behind a pipe and behind a socket.  ``close`` is *not* handled here:
    connection teardown belongs to the serving loop that owns the
    connection.

    Raising is the error path: the loop ships the exception back as an
    ``("err", exc)`` reply and keeps serving (command failures are not
    faults).
    """
    if command == "ingest":
        xs, ys, fast = payload
        shard.ingest(xs, ys, fast)
        return shard.steps
    if command == "released":
        # Snapshot, never the live mechanisms: the wire carries the
        # released statistic (O(m)/O(m²)), not the tree (O(m² log T)
        # plus generator state).  One slot per bundle statistic, in
        # bundle order — two for the default (cross, gram) bundle,
        # three for the IV (zz, zx, zy) bundle.  A tenant shard's slot
        # may itself be a tuple (one release per tenant, or one
        # shared-Gram handle per γ group) — same snapshot type, same
        # wire format, just k of them.
        snapshots = []
        for handle in shard.released():
            if isinstance(handle, tuple):
                snapshots.append(
                    tuple(
                        mechanism.released_moments() for mechanism in handle
                    )
                )
            else:
                snapshots.append(handle.released_moments())
        return tuple(snapshots)
    if command == "tenant":
        action, name, extra = payload
        if action == "add":
            rng, decay = extra
            shard.add_tenant(name, rng, decay=decay)
        elif action == "remove":
            shard.remove_tenant(name)
        elif action != "list":
            raise ValidationError(f"unknown tenant action {action!r}")
        return shard.tenants()
    if command == "memory":
        return shard.memory_floats()
    if command == "ping":
        # The heartbeat probe: cheapest possible liveness round trip.  A
        # wedged worker cannot answer it, so a deadline on the ping is
        # what turns "stuck" into "dead" without waiting for real traffic.
        return shard.steps
    if command == "sleep":
        # Fault-injection hook for the hung-worker suites and the
        # heartbeat benchmark: wedges the worker mid-command for
        # ``payload`` seconds, exactly like a pathological BLAS call.
        time.sleep(float(payload))
        return None
    if command == "describe":
        projection = getattr(shard, "projection", None)
        return {
            "index": shard.index,
            "backend": shard.backend,
            "mechanism": shard.mechanism,
            "moment_dim": shard.moment_dim,
            "steps": shard.steps,
            "pid": mp.current_process().pid,
            "projection_matrix": (
                None
                if projection is None
                else np.array(projection.matrix, dtype=float)
            ),
        }
    raise ValidationError(f"unknown worker command {command!r}")


def _shard_worker_main(spec: ShardSpec, conn) -> None:
    """The worker process: build the shard, then serve pipe commands.

    Top-level (not a closure) so the ``"spawn"`` start method can import
    it.  Protocol: the parent sends ``(command, payload)`` tuples and the
    worker replies ``("ok", result)`` or ``("err", exception)``; command
    failures never kill the worker — the shard's block-atomic rejection
    semantics make a retry safe, exactly as in-process.  A reply that
    cannot be delivered at all ends the loop cleanly (the parent is gone
    or the pipe is broken — there is no one left to serve).
    """
    try:
        shard = spec.build()
    except BaseException as exc:
        _safe_send(conn, ("err", exc))
        conn.close()
        return
    if not _safe_send(conn, ("ok", spec.index)):  # ready handshake
        conn.close()
        return
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            return  # parent vanished; daemonic exit
        if command == "close":
            _safe_send(conn, ("ok", None))
            conn.close()
            return
        try:
            result = dispatch_command(shard, command, payload)
        except BaseException as exc:
            reply = ("err", exc)
        else:
            reply = ("ok", result)
        if not _safe_send(conn, reply):
            conn.close()
            return


class ShardRpcClient:
    """The parent-side shard proxy surface, over any command transport.

    Exposes the same surface the serving front uses on an in-process
    :class:`~repro.streaming.serving.MomentShard` — ``index`` / ``alive``
    / ``steps`` / ``budget`` attributes, :meth:`ingest`,
    :meth:`released`, :meth:`memory_floats`, :meth:`kill`,
    :meth:`shutdown` — so :class:`~repro.streaming.serving.ShardedStream`
    treats every transport uniformly.  ``steps`` is a parent-side mirror
    updated from ingest acknowledgements, which is what keeps the
    lost-mass accounting exact even after the worker is gone.

    Subclasses own the wire: :class:`ProcessShardWorker` (a
    ``multiprocessing`` pipe to a spawned process) and
    :class:`~repro.streaming.netserve.TcpShardWorker` (length-prefixed
    frames to a shard host listener) implement :meth:`_request` plus the
    lifecycle pair :meth:`kill` / :meth:`shutdown`; everything here is
    transport-independent post-processing of ``(status, result)`` replies.

    Not thread-safe on its own: the serving front serializes all wire
    access per worker (its ingestion lock, or one drain task per shard in
    group mode, with the heartbeat loop taking the same lock).
    """

    def _init_mirror(self, spec: ShardSpec, request_timeout: float | None) -> None:
        """Initialize the parent-side mirror fields (subclass constructors)."""
        if request_timeout is not None and not request_timeout > 0:
            raise ValidationError(
                f"request_timeout must be positive (seconds) or None, got "
                f"{request_timeout!r}"
            )
        self.spec = spec
        self.index = spec.index
        self.budget = spec.budget
        self.backend = spec.backend
        self.mechanism = spec.mechanism
        self.request_timeout = request_timeout
        self.steps = 0
        self.alive = False
        # Set by the serving front once this worker's mass is credited to
        # lost_steps (same flag as the in-process MomentShard).
        self.lost_accounted = False

    # ------------------------------------------------------------------
    # The MomentShard surface
    # ------------------------------------------------------------------

    def ingest(self, xs: np.ndarray, ys: np.ndarray, fast: bool) -> None:
        """Route one block over the wire; blocks until acknowledged.

        Failure semantics match the in-process shard: a command-level
        error (validation, horizon) leaves the worker's trees unconsumed
        and the worker alive, so a retry is safe; a *dead or stuck*
        worker raises
        :class:`~repro.exceptions.ShardUnavailableError` after marking
        the shard dead (partial-coverage accounting upstream).
        """
        self.steps = int(self._request("ingest", (xs, ys, bool(fast))))

    def released(self) -> tuple[ReleasedMoments, ...]:
        """The bundle's released moments, snapshotted over the wire.

        One round trip for all snapshots, in bundle order — (cross, gram)
        for the default backends, (zz, zx, zy) for the IV backend; each
        merges interchangeably with live mechanisms
        (:func:`~repro.privacy.tree.merge_released`).
        """
        return tuple(self._request("released", None))

    @property
    def cross(self) -> ReleasedMoments:
        """Snapshot of the cross-moment release (diagnostics; one RPC)."""
        return self.released()[0]

    @property
    def gram(self) -> ReleasedMoments:
        """Snapshot of the second-moment release (diagnostics; one RPC)."""
        return self.released()[1]

    def add_tenant(
        self,
        name: str,
        rng: np.random.Generator,
        decay: float | None = None,
    ) -> None:
        """Attach a tenant cross tree on the worker (tenant backend only).

        The generator crosses the wire by pickle, so the worker-side tree
        consumes exactly the stream this generator would produce locally —
        the same bit-identity contract as initial construction.  ``decay``
        assigns the tenant to one of the shard's declared γ groups.
        """
        self._request("tenant", ("add", name, (rng, decay)))

    def remove_tenant(self, name: str) -> None:
        """Drop a tenant's cross tree on the worker (tenant backend only)."""
        self._request("tenant", ("remove", name, None))

    def tenants(self) -> tuple[str, ...]:
        """Active tenant names on the worker, in slot order."""
        return tuple(self._request("tenant", ("list", None, None)))

    def memory_floats(self) -> int:
        """Floats held by the worker's mechanisms (0 once dead)."""
        if not self.alive:
            return 0
        return int(self._request("memory", None))

    def describe(self) -> dict:
        """Worker-side identity snapshot (backend, dims, pid, Φ matrix)."""
        return self._request("describe", None)

    def ping(self) -> int:
        """One liveness round trip (the heartbeat probe); returns worker steps.

        Subject to ``request_timeout`` like every RPC, so a wedged worker
        fails the ping within the deadline and is folded into the
        partial-coverage fault path — how the health-check loop detects
        stuck workers without waiting for real traffic.
        """
        return int(self._request("ping", None))

    def _request(self, command: str, payload):
        raise NotImplementedError

    def kill(self) -> None:
        raise NotImplementedError

    def shutdown(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(index={self.index}, "
            f"backend={self.backend!r}, alive={self.alive}, "
            f"steps={self.steps})"
        )


class ProcessShardWorker(ShardRpcClient):
    """One shard worker running in its own process, driven over a pipe.

    See :class:`ShardRpcClient` for the surface contract.

    Parameters
    ----------
    spec:
        The picklable worker recipe (see :class:`ShardSpec`).
    start_method:
        ``multiprocessing`` start method; defaults to
        :data:`DEFAULT_START_METHOD` (``"spawn"``).
    request_timeout:
        Deadline in seconds on every parent→worker round trip, enforced
        with ``conn.poll(timeout)`` before the reply ``recv``.  A missed
        deadline means the worker is alive-but-stuck — it is killed on
        the spot (a late reply must never pair with a future request) and
        :class:`~repro.exceptions.ShardTimeoutError` is raised, folding
        the stuck worker into the crashed-worker partial-coverage path.
        ``None`` (default) keeps the legacy unbounded waits.
    shutdown_timeout:
        Bound on the graceful-close handshake and the exit join; a worker
        wedged mid-command falls through to a kill after this many
        seconds instead of hanging ``shutdown()`` (and with it ``close``)
        forever.
    """

    def __init__(
        self,
        spec: ShardSpec,
        start_method: str | None = None,
        request_timeout: float | None = None,
        shutdown_timeout: float = SHUTDOWN_TIMEOUT,
    ) -> None:
        self._init_mirror(spec, request_timeout)
        self.shutdown_timeout = float(shutdown_timeout)
        self._reap_lock = threading.Lock()
        ctx = mp.get_context(start_method or DEFAULT_START_METHOD)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(spec, child_conn),
            name=f"repro-shard-{spec.index}",
            daemon=True,
        )
        try:
            self._process.start()
        except BaseException:
            # A start() failure (e.g. the spec refuses to pickle under
            # spawn) must not leak the pipe fds.
            child_conn.close()
            self._reap()
            raise
        child_conn.close()
        # Ready handshake: surfaces child-side construction errors (bad
        # spec, unpicklable projection) eagerly, in the constructor.
        # Bounded by BOOT_TIMEOUT, not request_timeout: boot pays spawn
        # plus the numpy imports, so a steady-state deadline would
        # false-kill every worker at startup.
        # As in _request: ShardTimeoutError is an OSError, so its raise
        # must live outside the try that catches pipe failures.
        boot_timed_out = False
        try:
            if not self._conn.poll(BOOT_TIMEOUT):
                boot_timed_out = True
            else:
                status, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            self._reap()
            raise ShardUnavailableError(
                f"shard {self.index} worker process died during startup"
            ) from exc
        if boot_timed_out:
            self.kill()
            raise ShardTimeoutError(
                f"shard {self.index} worker did not complete the ready "
                f"handshake within {BOOT_TIMEOUT}s"
            )
        if status == "err":
            self._reap()
            raise payload
        self.alive = True

    def kill(self) -> None:
        """SIGKILL the worker — the crash-injection path.

        Deliberately un-graceful (no close command): models a worker
        death, so the parent-side books (``steps``) are all that remains,
        exactly as after a real crash.  Idempotent, and race-safe against
        a concurrent crash detection reaping the handle: the handle is
        captured locally and ``is_alive`` on an already-closed handle
        (``ValueError``) means someone else finished the job.
        """
        process = self._process
        if process is not None:
            try:
                if process.is_alive():
                    process.kill()
            except ValueError:  # handle closed under us; already reaped
                pass
        self._reap()

    def shutdown(self) -> None:
        """Gracefully stop the worker (close command, bounded join, reap).

        Idempotent, and safe after :meth:`kill` or a detected crash.  The
        close handshake and the exit join are both bounded by
        ``shutdown_timeout``: a worker wedged mid-command cannot answer
        the close command, so after the deadline the shutdown falls
        through to a kill instead of hanging forever (the bug class this
        PR removes from every blocking path).
        """
        if self.alive:
            try:
                self._conn.send(("close", None))
                # "ok" — worker is draining out.  poll() before recv():
                # a wedged worker never replies, and an unbounded recv
                # here is exactly the hang shutdown() must not have.
                if self._conn.poll(self.shutdown_timeout):
                    self._conn.recv()
            except (EOFError, OSError):
                pass
        process = self._process
        if process is not None:
            try:
                if process.is_alive():
                    process.join(timeout=self.shutdown_timeout)
                    if process.is_alive():  # wedged: fall through to kill
                        process.kill()
            except ValueError:  # pragma: no cover - concurrently reaped
                pass
        self._reap()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _request(self, command: str, payload):
        if not self.alive:
            raise ShardUnavailableError(
                f"shard {self.index} process worker is dead"
            )
        # The timeout raise lives OUTSIDE the try: ShardTimeoutError is a
        # TimeoutError is an OSError, so raising it inside would feed it
        # straight into the except clause below and launder the timeout
        # into a generic unavailability.
        timed_out = False
        try:
            self._conn.send((command, payload))
            if self.request_timeout is not None and not self._conn.poll(
                self.request_timeout
            ):
                timed_out = True
            else:
                status, result = self._conn.recv()
        except (EOFError, OSError) as exc:
            self._reap()
            raise ShardUnavailableError(
                f"shard {self.index} worker process died (command "
                f"{command!r}); merges degrade to partial coverage until "
                f"restart_shard({self.index})"
            ) from exc
        if timed_out:
            # Deadline missed: the worker is alive but stuck.  Kill it
            # *before* raising — if it were left running, its late reply
            # would still be queued in the pipe and would pair with the
            # *next* command's recv, silently corrupting the protocol.
            # Dead-and-refunded is the only safe state.
            self.kill()
            raise ShardTimeoutError(
                f"shard {self.index} worker missed the "
                f"{self.request_timeout}s deadline (command {command!r}); "
                f"worker killed, merges degrade to partial coverage until "
                f"restart_shard({self.index})"
            )
        if status == "err":
            raise result
        return result

    def _reap(self) -> None:
        """Mark dead and release OS resources (join + close pipe).

        Idempotent, and race-safe when a crash detection and an explicit
        ``kill()`` reap concurrently: the whole handle teardown is
        serialized under ``_reap_lock`` because
        ``multiprocessing.Process.close()`` itself is not thread-safe —
        two unsynchronized closers can both pass its popen check and the
        loser dies on ``del self._sentinel`` (AttributeError).  The
        remaining hazard is a handle closed by a path that does not take
        the lock (``ValueError`` from ``is_alive``), treated as already
        reaped; the AttributeError guard stays as a backstop for that
        same unlocked-closer interleaving inside ``close()``."""
        self.alive = False
        with self._reap_lock:
            process = self._process
            if process is not None:
                try:
                    if process.is_alive():
                        process.join(timeout=5.0)
                    if not process.is_alive():
                        process.close()
                        self._process = None
                except (
                    ValueError,
                    AttributeError,
                ):  # pragma: no cover - concurrently closed
                    self._process = None
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
