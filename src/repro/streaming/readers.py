"""Read-side scaling: per-reader snapshots and pub-sub invalidation.

The serving front pays the differential-privacy cost of an estimate once,
at release time; after that, serving it to many concurrent readers is pure
post-processing and should scale with hardware.  This module is the
fan-out layer that makes that true in practice:

* :class:`~repro.streaming.serving.EstimateCache` (in ``serving.py``)
  publishes by **atomic reference swap**, so anonymous reads
  (``ShardedStream.current_estimate``) are single lock-free pointer loads
  with no shared-counter mutation.
* :class:`ReaderHandle` (from :meth:`EstimateHub.reader` /
  ``ShardedStream.reader()``) gives each reader a **private snapshot**
  with a version fast-path check: between refreshes a read costs one
  atomic version compare and returns the reader's own reference — no
  shared state is touched, so ``N`` readers contend on nothing.  Read
  statistics are kept per handle and aggregated **on demand**
  (:meth:`EstimateHub.read_stats`) instead of bumping a shared counter on
  the hot path.
* **Pub-sub invalidation** replaces polling: :meth:`EstimateHub.subscribe`
  registers a callback fired on every publish (exceptions are isolated
  per subscription), and ``wait_for_version(v, timeout)`` — built on the
  cache's :class:`threading.Condition` — parks a poller until the publish
  that satisfies it.

Thread-safety contract
----------------------
The hub is fully thread-safe.  A :class:`ReaderHandle` is **one reader's**
object: its snapshot swap is a single reference assignment (safe to share
by accident), but its read counters are plain unsynchronized ints — give
each reader thread its own handle (they are cheap) rather than sharing
one.  Subscriber callbacks run on the *publisher's* thread, after the new
entry is visible to readers; keep them short and never block on the
publisher from inside one.

Staleness guarantee
-------------------
A read through any path (anonymous, handle, waiter, subscriber) can never
observe an estimate older than the last completed publish at the moment
the reference was loaded, and a handle's snapshot version never
regresses: ``put`` rejects version decreases and equal-version payload
changes (:class:`~repro.exceptions.PublishConflictError`), so
``same version ⇒ same payload`` and the fast path is exact, not
heuristic.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable

import numpy as np

from .._validation import check_int
from ..exceptions import ServingError
from .metrics import ReadStats

__all__ = ["EstimateHub", "ReaderHandle", "Subscription"]


class Subscription:
    """One registered publish callback, with per-subscription accounting.

    Returned by :meth:`EstimateHub.subscribe`.  The callback is invoked as
    ``callback(entry)`` with the freshly published
    :class:`~repro.streaming.serving.ServedEstimate` on every publish, on
    the publisher's thread, *after* the entry is visible to readers (so a
    callback that triggers reads observes a cache at least as new as its
    argument).

    Exceptions raised by the callback are **isolated**: they are counted
    on :attr:`errors` (and the last one kept on :attr:`last_error`) but
    never propagate to the publisher or suppress other subscribers —
    one misbehaving subscriber cannot take down the serving front or
    starve its peers.
    """

    def __init__(self, hub: "EstimateHub", callback: Callable) -> None:
        self._hub = hub
        self.callback = callback
        self.calls = 0
        self.errors = 0
        self.last_error: BaseException | None = None
        self.active = True

    def _deliver(self, entry) -> None:
        if not self.active:
            return
        self.calls += 1
        try:
            self.callback(entry)
        except Exception as exc:  # isolation: see the class docstring
            self.errors += 1
            self.last_error = exc

    def unsubscribe(self) -> None:
        """Deactivate and deregister; idempotent."""
        self.active = False
        self._hub._drop_subscription(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unsubscribe()


class _ReaderCounters:
    """A handle's mutable counters, shared with its GC finalizer.

    Lives separately from the handle so a ``weakref.finalize`` callback
    can fold the counts into the hub when an unclosed handle is garbage
    collected — capturing the handle itself would keep it alive forever.
    """

    __slots__ = ("reads", "snapshot_hits")

    def __init__(self) -> None:
        self.reads = 0
        self.snapshot_hits = 0


class ReaderHandle:
    """One reader's private view of the published estimate stream.

    Created by :meth:`EstimateHub.reader` (or ``ShardedStream.reader()``).
    Holds a snapshot of the last entry this reader observed; the read path
    is a **version fast-path check** — one atomic load of the cache's
    current entry, one int compare — and between refreshes it returns the
    reader's own snapshot reference without touching any shared mutable
    state.  Read counts are per-handle plain ints (no locks, no
    contention) and are aggregated on demand by
    :meth:`EstimateHub.read_stats`; the counts are folded into the hub's
    retired totals when the handle is closed **or garbage collected**, so
    a reader that forgets ``close()`` leaks neither the handle nor its
    statistics.

    One handle per reader thread (see the module docstring).  Usable as a
    context manager: ``with stream.reader() as handle: ...``.
    """

    def __init__(self, hub: "EstimateHub") -> None:
        self._hub = hub
        self._snapshot = None
        self._counts = _ReaderCounters()
        self._finalizer = weakref.finalize(self, hub._fold_counts, self._counts)
        self.closed = False

    @property
    def reads(self) -> int:
        """Reads answered through this handle."""
        return self._counts.reads

    @property
    def snapshot_hits(self) -> int:
        """Reads answered from the snapshot via the version fast path."""
        return self._counts.snapshot_hits

    def current(self):
        """The freshest published :class:`ServedEstimate` — lock-free.

        Raises
        ------
        NoEstimateError
            Before the first publish (``ShardedStream`` pre-publishes its
            solver's initial parameter, so its handles never see this; it
            surfaces on a bare hub/cache used standalone).
        ServingError
            If the handle was closed.
        """
        if self.closed:
            raise ServingError("this ReaderHandle is closed")
        entry = self._hub.cache.get()
        self._counts.reads += 1
        snapshot = self._snapshot
        if snapshot is not None and snapshot.version == entry.version:
            # Fast path: `put` guarantees same version ⇒ same payload, so
            # the reader's own reference is the current estimate.
            self._counts.snapshot_hits += 1
            return snapshot
        self._snapshot = entry
        return entry

    def theta(self) -> np.ndarray:
        """The current released parameter (read-only buffer)."""
        return self.current().theta

    @property
    def version(self) -> int:
        """Version of this reader's snapshot (−1 before its first read)."""
        snapshot = self._snapshot
        return -1 if snapshot is None else snapshot.version

    def wait_for_version(self, version: int, timeout: float | None = None):
        """Park until ``version`` (or newer) is published; return the entry.

        Counts as one read on this handle and advances the snapshot, so a
        subsequent :meth:`current` takes the fast path.  Raises
        :class:`~repro.exceptions.WaitTimeoutError` on timeout and
        :class:`~repro.exceptions.ServingError` if the hub closes while
        waiting.
        """
        if self.closed:
            raise ServingError("this ReaderHandle is closed")
        entry = self._hub.wait_for_version(version, timeout=timeout)
        self._counts.reads += 1
        if self._snapshot is not None and self._snapshot.version == entry.version:
            self._counts.snapshot_hits += 1
        else:
            self._snapshot = entry
        return entry

    def subscribe(self, callback: Callable) -> Subscription:
        """Register a publish callback on the hub (handle-scoped sugar)."""
        return self._hub.subscribe(callback)

    def stats(self) -> dict:
        """This handle's own counters (one reader's view, not the fleet's)."""
        return {
            "reads": self.reads,
            "snapshot_hits": self.snapshot_hits,
            "version": self.version,
            "closed": self.closed,
        }

    def close(self) -> None:
        """Retire the handle: fold its counts into the hub; idempotent.

        The fold runs exactly once per handle — ``weakref.finalize``
        guarantees close-then-GC never double-counts.
        """
        if self.closed:
            return
        self.closed = True
        self._snapshot = None
        self._finalizer()  # folds this handle's counts, exactly once
        self._hub._discard_handle(self)

    def __enter__(self) -> "ReaderHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class EstimateHub:
    """The publish/subscribe front over one :class:`EstimateCache`.

    The single publish path of a serving front: :meth:`publish` installs
    the new entry in the cache (atomic swap + monotonicity checks), wakes
    every ``wait_for_version`` waiter, and fires the subscriber callbacks
    — in that order, so by the time a subscriber (or woken waiter) runs,
    anonymous readers already see the new entry.

    Hands out :class:`ReaderHandle` objects via :meth:`reader` and
    aggregates their per-reader statistics on demand via
    :meth:`read_stats` — the replacement for the shared read counter the
    cache used to mutate under its hot-path lock.
    """

    def __init__(self, cache=None) -> None:
        if cache is None:
            from .serving import EstimateCache  # avoid a module-level cycle

            cache = EstimateCache()
        self.cache = cache
        # Guards the subscriber list and the handle registry — never taken
        # on the read hot path.
        self._registry_lock = threading.Lock()
        self._subscriptions: list[Subscription] = []
        # Weak so a handle dropped without close() cannot leak; its
        # finalizer folds the counts into the retired totals either way
        # (close() or GC), so the accounting stays exact.
        self._handles: "weakref.WeakSet[ReaderHandle]" = weakref.WeakSet()
        self._retired_reads = 0
        self._retired_hits = 0
        self._closed = False

    # -- publish side ---------------------------------------------------

    def publish(self, theta, version: int, timestep: int, covered_steps: int):
        """Publish through the cache, wake waiters, fire subscribers."""
        if self._closed:
            raise ServingError("EstimateHub is closed; nothing can publish")
        entry = self.cache.put(theta, version, timestep, covered_steps)
        with self._registry_lock:
            subscriptions = list(self._subscriptions)
        for subscription in subscriptions:
            subscription._deliver(entry)
        return entry

    def subscribe(self, callback: Callable) -> Subscription:
        """Register ``callback(entry)`` to fire on every publish."""
        if not callable(callback):
            raise ServingError("subscribe() needs a callable")
        subscription = Subscription(self, callback)
        with self._registry_lock:
            self._subscriptions.append(subscription)
        return subscription

    def _drop_subscription(self, subscription: Subscription) -> None:
        with self._registry_lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)

    # -- read side ------------------------------------------------------

    def reader(self) -> ReaderHandle:
        """A fresh per-reader handle (register it for stats aggregation)."""
        if self._closed:
            raise ServingError("EstimateHub is closed; no new readers")
        handle = ReaderHandle(self)
        with self._registry_lock:
            self._handles.add(handle)
        return handle

    def _fold_counts(self, counts: _ReaderCounters) -> None:
        """Fold one retired handle's counters into the totals.

        The target of every handle's ``weakref.finalize`` — runs exactly
        once per handle, on ``close()`` or at garbage collection,
        whichever comes first.
        """
        with self._registry_lock:
            self._retired_reads += counts.reads
            self._retired_hits += counts.snapshot_hits

    def _discard_handle(self, handle: ReaderHandle) -> None:
        with self._registry_lock:
            self._handles.discard(handle)

    def wait_for_version(self, version: int, timeout: float | None = None):
        """Block until ``version`` (or newer) is published; return the entry.

        Parks on the cache's condition variable (the same one ``put``
        notifies); :class:`~repro.exceptions.WaitTimeoutError` on timeout.
        A hub closed mid-wait wakes its waiters with a
        :class:`~repro.exceptions.ServingError` instead of leaving them
        parked for a publish that can never come.
        """
        version = check_int("version", version, minimum=0)
        return self.cache.wait_for_version(
            version, timeout=timeout, abort=self._abort_reason
        )

    def _abort_reason(self) -> str:
        """The cache-wait abort hook: non-empty once the hub is closed."""
        if self._closed:
            return "EstimateHub closed while waiting for a new estimate version"
        return ""

    def read_stats(self) -> ReadStats:
        """Aggregate fan-out statistics on demand — the stats entry point.

        Publisher-side numbers come from the cache's consistent
        :meth:`~repro.streaming.serving.EstimateCache.stats` snapshot;
        reader-side numbers sum the live handles' counters plus the
        retired totals.  Nothing here is maintained on the read hot path.
        """
        cache_stats = self.cache.stats()
        with self._registry_lock:
            handles = [h for h in self._handles if not h.closed]
            reads = self._retired_reads + sum(h.reads for h in handles)
            hits = self._retired_hits + sum(h.snapshot_hits for h in handles)
            readers = len(handles)
        return ReadStats(
            version=cache_stats["version"],
            writes=cache_stats["writes"],
            readers=readers,
            reads=reads,
            snapshot_hits=hits,
        )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Refuse further publishes/readers and wake parked waiters.

        Waiters whose version never arrived are released with a
        :class:`~repro.exceptions.ServingError`.  The cache itself is
        untouched, so already-served entries remain readable (existing
        handles and anonymous reads keep working).  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        # Wake every parked waiter; their abort hook re-checks the flag.
        self.cache.wake_waiters()
