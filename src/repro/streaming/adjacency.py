"""Neighboring-stream utilities for event-level differential privacy.

The paper's Definition 4 declares two streams *neighbors* when one datapoint
is changed (same length, one index differs).  These helpers construct and
recognize neighbors; the end-to-end privacy tests use them to verify that
the mechanisms' *noise-free statistics* move by no more than the declared
sensitivities between neighbors — the calibration fact every privacy proof
in the paper reduces to.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_int, check_vector
from .stream import RegressionStream

__all__ = ["replace_point", "is_neighbor"]


def replace_point(
    stream: RegressionStream, index: int, x: np.ndarray, y: float
) -> RegressionStream:
    """A neighboring stream with position ``index`` replaced by ``(x, y)``.

    The replacement pair must obey the same unit-ball normalization; the
    :class:`RegressionStream` constructor enforces it.
    """
    index = check_int("index", index, minimum=0)
    if index >= stream.length:
        raise ValueError(f"index {index} out of range for stream of length {stream.length}")
    x = check_vector("x", x, dim=stream.dim)
    xs = stream.xs.copy()
    ys = stream.ys.copy()
    xs[index] = x
    ys[index] = float(y)
    return RegressionStream(xs, ys, stream.theta_star)


def is_neighbor(a: RegressionStream, b: RegressionStream, tol: float = 0.0) -> bool:
    """Whether two streams differ in at most one position (Definition 4)."""
    if a.length != b.length or a.dim != b.dim:
        return False
    x_diff = np.any(np.abs(a.xs - b.xs) > tol, axis=1)
    y_diff = np.abs(a.ys - b.ys) > tol
    differing = np.logical_or(x_diff, y_diff)
    return int(differing.sum()) <= 1
