"""The incremental runner: drive an estimator over a stream and score it.

The runner implements the measurement protocol behind every number the
benchmarks report: feed the stream point-by-point to the estimator, and at
each evaluated timestep compare the estimator's squared-loss risk on the
prefix against the exact constrained minimum (computed with warm-started
FISTA on streaming moment statistics, so the whole sweep costs
``O(T·(d² + solver))`` rather than ``O(T²·d)``).

Estimators are any object with an ``observe(x, y) -> theta`` method — all of
:mod:`repro.core`'s mechanisms and baselines qualify (duck typing; the
``IncrementalEstimator`` protocol below documents the contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import check_int
from ..erm.objective import QuadraticRisk
from ..erm.solvers import fista_quadratic
from ..geometry.base import ConvexSet
from .metrics import ExcessRiskTrace
from .stream import RegressionStream

__all__ = ["IncrementalRunner", "RunResult", "IncrementalEstimator"]


@runtime_checkable
class IncrementalEstimator(Protocol):
    """The estimator contract: consume one point, release one parameter.

    ``observe`` is called exactly once per timestep with the newly arrived
    pair and must return the parameter vector released at that timestep.
    Implementations are responsible for their own privacy accounting.
    """

    def observe(self, x: np.ndarray, y: float) -> np.ndarray:  # pragma: no cover
        ...


@dataclass
class RunResult:
    """Everything a single incremental run produced.

    Attributes
    ----------
    trace:
        The per-timestep risk trajectory.
    final_theta:
        The estimator's output at the last timestep.
    thetas:
        Outputs at each *evaluated* timestep (aligned with
        ``trace.timesteps``); populated only when ``keep_thetas=True``.
    """

    trace: ExcessRiskTrace
    final_theta: np.ndarray
    thetas: list[np.ndarray]


class IncrementalRunner:
    """Run an incremental estimator over a stream, measuring excess risk.

    Parameters
    ----------
    constraint:
        The constraint set ``C`` that both the estimator and the exact
        minimizer are confined to.
    eval_every:
        Evaluate the excess risk at every ``eval_every``-th timestep (and
        always at the final one).  1 reproduces Definition 1 exactly;
        larger strides keep long sweeps cheap.
    solver_iterations:
        FISTA budget per exact solve; the solver warm-starts from the
        previous minimizer so modest budgets stay accurate along a stream.
    keep_thetas:
        Record the released parameter at each evaluated timestep.
    """

    def __init__(
        self,
        constraint: ConvexSet,
        eval_every: int = 1,
        solver_iterations: int = 200,
        keep_thetas: bool = False,
    ) -> None:
        self.constraint = constraint
        self.eval_every = check_int("eval_every", eval_every, minimum=1)
        self.solver_iterations = check_int("solver_iterations", solver_iterations, minimum=1)
        self.keep_thetas = bool(keep_thetas)

    def run(self, estimator: IncrementalEstimator, stream: RegressionStream) -> RunResult:
        """Feed ``stream`` to ``estimator``; return the scored result."""
        risk = QuadraticRisk(stream.dim)
        trace = ExcessRiskTrace()
        thetas: list[np.ndarray] = []
        theta = self.constraint.project(np.zeros(stream.dim))
        warm_start = theta.copy()

        for t, (x, y) in enumerate(stream, start=1):
            theta = np.asarray(estimator.observe(x, y), dtype=float)
            risk.add_point(x, y)
            if t % self.eval_every == 0 or t == stream.length:
                warm_start = fista_quadratic(
                    risk,
                    self.constraint,
                    iterations=self.solver_iterations,
                    start=warm_start,
                )
                trace.record(t, risk.value(theta), risk.value(warm_start))
                if self.keep_thetas:
                    thetas.append(theta.copy())
        return RunResult(trace=trace, final_theta=theta, thetas=thetas)
