"""The incremental runner: drive an estimator over a stream and score it.

The runner implements the measurement protocol behind every number the
benchmarks report: feed the stream to the estimator, and at each evaluated
timestep compare the estimator's squared-loss risk on the prefix against
the exact constrained minimum (computed with warm-started FISTA on
streaming moment statistics, so the whole sweep costs
``O(T·(d² + solver))`` rather than ``O(T²·d)``).

Two execution modes share one measurement contract:

* ``batch_size=1`` (default) — the paper's point-by-point protocol:
  ``observe(x, y)`` per timestep, risk evaluated on every ``eval_every``-th
  prefix (and the final one).
* ``batch_size=k > 1`` — the batched engine: the stream is cut into blocks
  of ``k`` (the final block may be ragged), each block is handed to the
  estimator's ``observe_batch(X, y)`` fast path (falling back to a
  point-loop for estimators that lack one), and the risk statistics are
  updated with one BLAS-level ``XᵀX`` product per block.  Evaluations
  land on block *boundaries*: the block that crosses an ``eval_every``
  multiple (or finishes the stream) is evaluated at its final timestep.
  When ``eval_every`` is a multiple of ``batch_size`` the evaluated
  timesteps coincide exactly with the sequential protocol's.

Estimators are any object with an ``observe(x, y) -> theta`` method — all
of :mod:`repro.core`'s mechanisms and baselines qualify (duck typing; the
``IncrementalEstimator`` protocol below documents the contract, and the
optional ``observe_batch`` fast path is described in the README's batched
API contract).

Serving fronts are estimators too: anything additionally exposing
``reader()`` (e.g. :class:`~repro.streaming.serving.ShardedStream`) is
read through a per-run
:class:`~repro.streaming.readers.ReaderHandle` — the runner acquires one
handle up front, reads the released parameter through its lock-free
snapshot fast path at every observation, and retires it when the run
ends, so a measured serving front is driven exactly like a production
reader rather than through an ad-hoc cache access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import check_int
from ..erm.objective import QuadraticRisk
from ..erm.solvers import fista_quadratic
from ..exceptions import ValidationError
from ..geometry.base import ConvexSet
from .metrics import ExcessRiskTrace
from .stream import RegressionStream

__all__ = ["IncrementalRunner", "RunResult", "IncrementalEstimator"]


@runtime_checkable
class IncrementalEstimator(Protocol):
    """The estimator contract: consume one point, release one parameter.

    ``observe`` is called exactly once per timestep with the newly arrived
    pair and must return the parameter vector released at that timestep.
    Implementations are responsible for their own privacy accounting.

    Estimators may additionally expose ``observe_batch(X, y) -> theta``
    consuming a ``(k, d)``/``(k,)`` block of consecutive points and
    returning the parameter released after the block's final point; the
    runner's batched mode uses it when present.
    """

    def observe(self, x: np.ndarray, y: float) -> np.ndarray:  # pragma: no cover
        ...


@dataclass
class RunResult:
    """Everything a single incremental run produced.

    Attributes
    ----------
    trace:
        The per-timestep risk trajectory.
    final_theta:
        The estimator's output at the last timestep.
    thetas:
        Outputs at each *evaluated* timestep (aligned with
        ``trace.timesteps``); populated only when ``keep_thetas=True``.
    """

    trace: ExcessRiskTrace
    final_theta: np.ndarray
    thetas: list[np.ndarray]


class IncrementalRunner:
    """Run an incremental estimator over a stream, measuring excess risk.

    Parameters
    ----------
    constraint:
        The constraint set ``C`` that both the estimator and the exact
        minimizer are confined to.
    eval_every:
        Evaluate the excess risk at every ``eval_every``-th timestep (and
        always at the final one).  1 reproduces Definition 1 exactly;
        larger strides keep long sweeps cheap.  Values larger than the
        stream length evaluate the final timestep only.
    solver_iterations:
        FISTA budget per exact solve; the solver warm-starts from the
        previous minimizer so modest budgets stay accurate along a stream.
    keep_thetas:
        Record the released parameter at each evaluated timestep.
    """

    def __init__(
        self,
        constraint: ConvexSet,
        eval_every: int = 1,
        solver_iterations: int = 200,
        keep_thetas: bool = False,
    ) -> None:
        self.constraint = constraint
        self.eval_every = check_int("eval_every", eval_every, minimum=1)
        self.solver_iterations = check_int("solver_iterations", solver_iterations, minimum=1)
        self.keep_thetas = bool(keep_thetas)

    def run(
        self,
        estimator: IncrementalEstimator,
        stream: RegressionStream,
        batch_size: int = 1,
    ) -> RunResult:
        """Feed ``stream`` to ``estimator``; return the scored result.

        Parameters
        ----------
        estimator:
            The incremental estimator under measurement.
        stream:
            The (non-empty) stream to drive it with.
        batch_size:
            Block size for the batched engine; 1 (default) is the paper's
            point-by-point protocol.  See the module docstring for how
            evaluation timesteps land in each mode.

        Raises
        ------
        ValidationError
            If the stream is empty or ``batch_size < 1``.
        """
        batch_size = check_int("batch_size", batch_size, minimum=1)
        if stream.length == 0:
            raise ValidationError("cannot run an estimator over an empty stream")
        # Serving fronts expose reader(): read their released parameter
        # through a per-run handle (snapshot fast path, per-reader stats)
        # instead of the observe return value.
        reader_factory = getattr(estimator, "reader", None)
        handle = reader_factory() if callable(reader_factory) else None
        try:
            if batch_size == 1:
                return self._run_sequential(estimator, stream, handle)
            return self._run_batched(estimator, stream, batch_size, handle)
        finally:
            if handle is not None:
                handle.close()

    def _run_sequential(
        self, estimator: IncrementalEstimator, stream: RegressionStream, handle=None
    ) -> RunResult:
        risk = QuadraticRisk(stream.dim)
        trace = ExcessRiskTrace()
        thetas: list[np.ndarray] = []
        theta = self.constraint.project(np.zeros(stream.dim))
        warm_start = theta.copy()

        for t, (x, y) in enumerate(stream, start=1):
            released = estimator.observe(x, y)
            theta = np.asarray(
                handle.theta() if handle is not None else released, dtype=float
            )
            risk.add_point(x, y)
            if t % self.eval_every == 0 or t == stream.length:
                warm_start = self._evaluate(risk, trace, theta, warm_start, t, thetas)
        return RunResult(trace=trace, final_theta=theta, thetas=thetas)

    def _run_batched(
        self,
        estimator: IncrementalEstimator,
        stream: RegressionStream,
        batch_size: int,
        handle=None,
    ) -> RunResult:
        risk = QuadraticRisk(stream.dim)
        trace = ExcessRiskTrace()
        thetas: list[np.ndarray] = []
        theta = self.constraint.project(np.zeros(stream.dim))
        warm_start = theta.copy()
        batched_observe = getattr(estimator, "observe_batch", None)

        for start in range(0, stream.length, batch_size):
            stop = min(start + batch_size, stream.length)
            block_x = stream.xs[start:stop]
            block_y = stream.ys[start:stop]
            if batched_observe is not None:
                released = batched_observe(block_x, block_y)
            else:
                for x, y in zip(block_x, block_y):
                    released = estimator.observe(x, float(y))
            theta = np.asarray(
                handle.theta() if handle is not None else released, dtype=float
            )
            risk.add_block(block_x, block_y)
            crossed_eval = stop // self.eval_every > start // self.eval_every
            if crossed_eval or stop == stream.length:
                warm_start = self._evaluate(risk, trace, theta, warm_start, stop, thetas)
        return RunResult(trace=trace, final_theta=theta, thetas=thetas)

    def _evaluate(
        self,
        risk: QuadraticRisk,
        trace: ExcessRiskTrace,
        theta: np.ndarray,
        warm_start: np.ndarray,
        t: int,
        thetas: list[np.ndarray],
    ) -> np.ndarray:
        """Score the prefix at timestep ``t``; return the new warm start."""
        warm_start = fista_quadratic(
            risk,
            self.constraint,
            iterations=self.solver_iterations,
            start=warm_start,
        )
        trace.record(t, risk.value(theta), risk.value(warm_start))
        if self.keep_thetas:
            thetas.append(theta.copy())
        return warm_start
