"""Streaming substrate: stream model, adjacency, runner, fleet, metrics.

The paper's incremental setting (§1) fixes a stream length ``T``; one
covariate-response pair arrives per timestep; the algorithm outputs an
estimator after *seeing* the point (unlike online learning, which commits
first — see the paper's "Comparison to Online Learning").  The runner in
this package drives any incremental estimator over a stream — point by
point, or in blocks via the estimators' ``observe_batch`` fast path — and
measures the Definition-1 excess risk against the exact constrained
minimizer.  The fleet runner replicates such runs across seeds and worker
processes for Monte-Carlo sweeps.  The serving module adds the production
front: a sharded stream with per-shard moment trees, a noise-preserving
merge rule, asynchronous ingestion, and a versioned estimate cache; the
transport module lets those shard workers run in their own interpreters
behind ``multiprocessing`` pipes (``ShardedStream(transport="process")``),
shipping released moments back as picklable snapshots; the netserve
module serves the same command protocol over length-prefixed TCP frames
(``ShardedStream(transport="tcp")``: ``ShardHostListener`` hosts,
``ShardAddress`` rendezvous, per-RPC deadlines and heartbeats), so
shards run on separate hosts.  The readers
module is the read-side counterpart: lock-free estimate fan-out through
per-reader snapshot handles and pub-sub invalidation
(``ShardedStream.reader()`` / ``subscribe`` / ``wait_for_version``).
"""

from .stream import RegressionStream
from .adjacency import is_neighbor, replace_point
from .metrics import ExcessRiskTrace, ReadStats
from .runner import IncrementalRunner, RunResult
from .fleet import FleetResult, FleetRunner, ReplicateResult, ReplicateSpec
from .moments import MomentBundle, MomentStatistic
from .readers import EstimateHub, ReaderHandle, Subscription
from .serving import (
    EstimateCache,
    IVMomentShard,
    MomentShard,
    ProjectedMomentShard,
    ServedEstimate,
    ShardedStream,
    SketchShard,
    TenantShard,
)
from .tenancy import MultiTenantStream, TenantView
from .transport import ProcessShardWorker, ShardRpcClient, ShardSpec
from .netserve import ShardAddress, ShardHostListener, TcpShardWorker

__all__ = [
    "RegressionStream",
    "replace_point",
    "is_neighbor",
    "ExcessRiskTrace",
    "ReadStats",
    "IncrementalRunner",
    "RunResult",
    "FleetRunner",
    "FleetResult",
    "ReplicateSpec",
    "ReplicateResult",
    "ShardedStream",
    "MomentBundle",
    "MomentStatistic",
    "MomentShard",
    "ProjectedMomentShard",
    "SketchShard",
    "IVMomentShard",
    "TenantShard",
    "MultiTenantStream",
    "TenantView",
    "ProcessShardWorker",
    "ShardRpcClient",
    "ShardSpec",
    "ShardAddress",
    "ShardHostListener",
    "TcpShardWorker",
    "EstimateCache",
    "EstimateHub",
    "ReaderHandle",
    "Subscription",
    "ServedEstimate",
]
