"""Streaming substrate: stream model, adjacency, runner, metrics.

The paper's incremental setting (§1) fixes a stream length ``T``; one
covariate-response pair arrives per timestep; the algorithm outputs an
estimator after *seeing* the point (unlike online learning, which commits
first — see the paper's "Comparison to Online Learning").  The runner in
this package drives any incremental estimator over a stream and measures
the Definition-1 excess risk at every timestep against the exact
constrained minimizer.
"""

from .stream import RegressionStream
from .adjacency import is_neighbor, replace_point
from .metrics import ExcessRiskTrace
from .runner import IncrementalRunner, RunResult

__all__ = [
    "RegressionStream",
    "replace_point",
    "is_neighbor",
    "ExcessRiskTrace",
    "IncrementalRunner",
    "RunResult",
]
