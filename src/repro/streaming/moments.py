"""Moment bundles: named sets of privatized running statistics.

The serving stack reduces every estimator it fronts to *privatized running
moment statistics* over routed blocks.  Historically exactly two were
hardcoded at every layer — a ``(m,)`` cross vector and a ``(m, m)`` Gram
matrix — but two-stage least squares needs three (ZᵀZ, ZᵀX, Zᵀy) and
kernel methods will bring their own shapes.  This module is the one
generalization point:

* :class:`MomentStatistic` — one named statistic: a shape, a per-element
  accumulation rule (the exact tier), a pre-reduced block-total rule (the
  fast tier), and a budget weight.
* :class:`MomentBundle` — an *ordered* set of statistics, each backed by
  its own release mechanism from
  :func:`~repro.privacy.release.make_release_mechanism`, advanced in
  lockstep over the shard's sub-stream.

The shard classes in :mod:`repro.streaming.serving` are thin bundle
declarations: :class:`~repro.streaming.serving.MomentShard` declares the
default two-entry (cross, gram) bundle — built with the same factory
arguments, the same rng children, and the same float expressions as the
historical inline pair, so the refactor is bit-identical under one seed —
and :class:`~repro.streaming.serving.IVMomentShard` declares the
three-entry (zz, zx, zy) bundle :class:`~repro.core.priv_inc_iv.PrivIncIV`
consumes.

Fault semantics (the per-bundle accounting rule)
------------------------------------------------
:meth:`MomentBundle.ingest` materializes *every* statistic's input before
any mechanism advances, so all failures the library can raise
(validation, capacity) happen on the **first** entry, before anything is
consumed — the block-atomic no-consumption guarantee the front's refund
path relies on, unchanged from the two-tree days.  If a *later* entry
nevertheless fails after earlier entries committed (a torn bundle — e.g.
a mechanism poisoned mid-block), the bundle can no longer answer a
coverage-consistent merge: it discards its mechanisms and raises
:class:`~repro.exceptions.BundlePartialCommitError` (a
:class:`~repro.exceptions.ShardUnavailableError`), which the owning shard
converts into its own death.  Loss accounting then counts exactly the
shard's fully committed blocks: the torn block was never acknowledged, so
``lost_steps`` refunds stay per-bundle-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.incremental_regression import MOMENT_SENSITIVITY
from ..exceptions import BundlePartialCommitError, ValidationError
from .._validation import check_release_knobs
from ..privacy.release import make_release_mechanism

__all__ = [
    "MomentBundle",
    "MomentStatistic",
    "bundle_names",
    "cross_statistic",
    "gram_statistic",
    "iv_statistics",
]


@dataclass(frozen=True)
class MomentStatistic:
    """One named running statistic of a shard's sub-stream.

    Attributes
    ----------
    name:
        The statistic's name — the key merges, budgets, and accountant
        labels are indexed by (``"cross"``, ``"gram"``, ``"zz"``, ...).
    shape:
        Element shape of the statistic (the release mechanism's shape).
    values:
        Exact-tier rule ``(rows, ys) -> (k, *shape)``: the per-element
        moment values a mechanism ``advance_batch`` consumes.
    total:
        Fast-tier rule ``(rows, ys, weights) -> shape``: the pre-reduced
        block total ``advance_sum`` consumes.  ``weights`` is the
        γ-weight vector ``γ^{k−1−i}`` when the bundle is decayed, else
        ``None`` (the plain one-product total).
    budget_weight:
        Relative share of the shard budget this statistic's mechanism
        receives (:func:`~repro.privacy.parameters.bundle_budgets`).
    """

    name: str
    shape: tuple[int, ...]
    values: Callable = field(repr=False)
    total: Callable = field(repr=False)
    budget_weight: float = 1.0


def cross_statistic(moment_dim: int) -> MomentStatistic:
    """The ``Σ x_i y_i`` statistic (``(m,)``) of the default bundle."""

    def values(rows, ys):
        return rows * ys[:, None]

    def total(rows, ys, weights):
        if weights is not None:
            return (weights * ys) @ rows
        return ys @ rows

    return MomentStatistic("cross", (moment_dim,), values, total)


def gram_statistic(moment_dim: int) -> MomentStatistic:
    """The ``Σ x_i x_iᵀ`` statistic (``(m, m)``) of the default bundle."""

    def values(rows, ys):
        return rows[:, :, None] * rows[:, None, :]

    def total(rows, ys, weights):
        if weights is not None:
            return (weights[:, None] * rows).T @ rows
        return rows.T @ rows

    return MomentStatistic("gram", (moment_dim, moment_dim), values, total)


def iv_statistics(instruments: int, dim: int) -> tuple[MomentStatistic, ...]:
    """The (zz, zx, zy) bundle of private two-stage least squares.

    Rows are stacked ``[z | x]`` blocks of width ``instruments + dim``
    (the serving front routes them like any covariate block); each rule
    slices its factors back out.  Under ``‖z‖ ≤ 1, ‖x‖ ≤ 1, |y| ≤ 1``
    every statistic's element has norm at most 1, so the L2-sensitivity
    is the same Δ₂ = 2 the plain cross/gram calibration uses and the
    bundle budgeting, noise calibration, and merge rule carry over
    verbatim.
    """
    p = instruments

    def zz_values(rows, ys):
        z = rows[:, :p]
        return z[:, :, None] * z[:, None, :]

    def zz_total(rows, ys, weights):
        z = rows[:, :p]
        if weights is not None:
            return (weights[:, None] * z).T @ z
        return z.T @ z

    def zx_values(rows, ys):
        return rows[:, :p, None] * rows[:, None, p:]

    def zx_total(rows, ys, weights):
        z, x = rows[:, :p], rows[:, p:]
        if weights is not None:
            return (weights[:, None] * z).T @ x
        return z.T @ x

    def zy_values(rows, ys):
        return rows[:, :p] * ys[:, None]

    def zy_total(rows, ys, weights):
        z = rows[:, :p]
        if weights is not None:
            return (weights * ys) @ z
        return ys @ z

    return (
        MomentStatistic("zz", (p, p), zz_values, zz_total),
        MomentStatistic("zx", (p, dim), zx_values, zx_total),
        MomentStatistic("zy", (p,), zy_values, zy_total),
    )


def bundle_names(backend: str) -> tuple[str, ...]:
    """The statistic names a serving backend's bundle declares, in order.

    The front needs the names *before* any shard exists — to size the rng
    spawn (``len(names)`` children per shard), to label the accountant
    charges, and to key the merged releases — so the mapping lives here
    rather than on the shard classes.
    """
    if backend == "iv":
        return ("zz", "zx", "zy")
    return ("cross", "gram")


class MomentBundle:
    """An ordered set of named statistics, each behind its own mechanism.

    Parameters
    ----------
    statistics:
        The :class:`MomentStatistic` declarations, in advance order.  The
        first entry is the *guard*: it advances first every block, so all
        ordinary failures (validation, capacity — the entries run in step
        lockstep) surface before anything is consumed.
    budgets:
        One :class:`~repro.privacy.parameters.PrivacyParams` per entry
        (:func:`~repro.privacy.parameters.bundle_budgets`).
    rngs:
        One independent child generator per entry, in entry order — the
        front spawns ``len(statistics)`` children per shard, so every
        transport consumes randomness identically.
    mechanism, horizon, decay, window:
        Forwarded to :func:`~repro.privacy.release.make_release_mechanism`
        per entry, exactly as the historical inline pair construction.
    l2_sensitivity:
        Shared sensitivity of every entry's stream (Δ₂ = 2 under the unit
        normalizations all current statistics assume).
    """

    def __init__(
        self,
        statistics,
        budgets,
        rngs,
        *,
        mechanism: str = "tree",
        horizon: int | None = None,
        decay: float | None = None,
        window: "int | float | None" = None,
        l2_sensitivity: float = MOMENT_SENSITIVITY,
    ) -> None:
        statistics = tuple(statistics)
        budgets = tuple(budgets)
        rngs = tuple(rngs)
        if not statistics:
            raise ValidationError("a moment bundle needs at least one statistic")
        names = tuple(stat.name for stat in statistics)
        if len(set(names)) != len(names):
            raise ValidationError(
                f"bundle statistic names must be unique, got {names!r}"
            )
        if len(budgets) != len(statistics) or len(rngs) != len(statistics):
            raise ValidationError(
                f"need one budget and one rng per statistic: "
                f"{len(statistics)} statistics, {len(budgets)} budgets, "
                f"{len(rngs)} rngs"
            )
        self.statistics = statistics
        self.names = names
        self.decay, self.window = check_release_knobs(decay, window)
        self._mechanisms: dict[str, object] | None = {}
        for stat, budget, rng in zip(statistics, budgets, rngs):
            self._mechanisms[stat.name] = make_release_mechanism(
                shape=stat.shape,
                l2_sensitivity=l2_sensitivity,
                params=budget,
                rng=rng,
                mechanism=mechanism,
                horizon=horizon,
                decay=self.decay,
                window=self.window,
            )

    def get(self, name: str):
        """The named entry's mechanism, or ``None`` once killed."""
        if self._mechanisms is None:
            return None
        return self._mechanisms[name]

    def ingest(self, rows: np.ndarray, ys: np.ndarray, fast: bool) -> None:
        """Advance every entry with one routed block, in declaration order.

        Every statistic's input is materialized *before* any mechanism
        advances; a first-entry failure therefore consumes nothing (the
        block stays refundable, the shard stays alive), while a
        later-entry failure after earlier commits tears the bundle — see
        the module docstring for the per-bundle fault rule.
        """
        k = rows.shape[0]
        if fast:
            # One BLAS product per statistic; mechanisms draw only
            # surviving-node noise (distributional tier).  Under ``decay``
            # the block totals are γ-weighted — ``advance_sum``'s contract
            # is ``Σ γ^{k−1−i} v_i`` so the mechanism's internal fold
            # ``γ^k·prefix + total`` reproduces the sequential recursion.
            if self.decay is not None and self.decay != 1.0:
                weights = self.decay ** np.arange(k - 1, -1, -1, dtype=float)
            else:
                weights = None
            inputs = [
                stat.total(rows, ys, weights) for stat in self.statistics
            ]
            self._advance(inputs, lambda mech, total: mech.advance_sum(total, k))
        else:
            inputs = [stat.values(rows, ys) for stat in self.statistics]
            self._advance(inputs, lambda mech, values: mech.advance_batch(values))

    def _advance(self, inputs, advance) -> None:
        mechanisms = self._mechanisms
        if mechanisms is None:
            raise ValidationError("cannot ingest into a killed moment bundle")
        for position, (stat, payload) in enumerate(zip(self.statistics, inputs)):
            try:
                advance(mechanisms[stat.name], payload)
            except BaseException as exc:
                if position == 0:
                    # Nothing consumed: block-atomic, retry-safe.
                    raise
                self.kill()
                raise BundlePartialCommitError(
                    f"statistic {stat.name!r} failed after {position} of "
                    f"{len(self.statistics)} bundle entries committed this "
                    f"block; the bundle is torn and its mechanisms were "
                    f"discarded"
                ) from exc

    def released(self) -> tuple:
        """The per-entry merge handles, in declaration order.

        The transport seam of the merge path: in-process bundles hand
        over their **live** mechanisms (zero-copy), while the remote
        transports snapshot each element as a
        :class:`~repro.privacy.tree.ReleasedMoments` over the wire —
        :func:`~repro.privacy.tree.merge_released` accepts both
        interchangeably.
        """
        if self._mechanisms is None:
            return tuple(None for _ in self.statistics)
        return tuple(self._mechanisms[name] for name in self.names)

    def memory_floats(self) -> int:
        """Floats held by the bundle's mechanisms (0 once killed)."""
        if self._mechanisms is None:
            return 0
        return sum(
            mechanism.memory_floats() for mechanism in self._mechanisms.values()
        )

    def kill(self) -> None:
        """Drop every mechanism; the bundle's ingested mass is lost."""
        self._mechanisms = None

    def __len__(self) -> int:
        return len(self.statistics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "killed" if self._mechanisms is None else "live"
        return f"MomentBundle(names={self.names!r}, {state})"
