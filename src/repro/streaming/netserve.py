"""The TCP shard transport: serving shard workers across host boundaries.

:mod:`repro.streaming.transport` established the command/response
protocol (picklable :class:`~repro.streaming.transport.ShardSpec` spawn
payloads down, :class:`~repro.privacy.tree.ReleasedMoments` snapshots
up, ``(command, payload)`` → ``("ok" | "err", result)`` framing) over a
``multiprocessing`` pipe.  This module serves the *same* protocol over
**length-prefixed pickled frames on a TCP socket**, so shards can run in
a different process on a different host:

* :class:`ShardHostListener` — the remote end.  Accepts connections,
  reads a :class:`~repro.streaming.transport.ShardSpec` as the first
  frame, builds the shard it describes (in a handler thread, or wrapped
  in a :class:`~repro.streaming.transport.ProcessShardWorker` subprocess
  for core-parallel isolation), and serves
  :func:`~repro.streaming.transport.dispatch_command` over the socket.
  One listener hosts many shards (one per connection) — run one per
  host, point ``ShardedStream(transport="tcp", addresses=[...])`` at
  the fleet.
* :class:`TcpShardWorker` — the parent-side proxy.  A
  :class:`~repro.streaming.transport.ShardRpcClient` whose wire is the
  socket, exposing the exact ``MomentShard`` surface the serving front
  already speaks, including the ``request_timeout`` deadline semantics:
  a missed deadline severs the connection *before* raising
  :class:`~repro.exceptions.ShardTimeoutError`, so a stale late reply
  can never pair with a future request.
* :class:`ShardAddress` — the rendezvous object: where a listener is.

Why the analyses survive this boundary too
------------------------------------------
Nothing privacy- or correctness-relevant is transport-shaped.  The
worker builds its mechanisms from the same spawned rng children every
other transport ships, so randomness is consumed identically (``K = 1``
under ``ingest="exact"`` stays bit-identical to the plain batched path,
and thread ≡ process ≡ tcp merged releases under one seed —
``tests/test_tcp_serving.py``).  The wire carries the released statistic
(``O(m²)`` floats, ``float64`` pickles exactly), never tree state, and
everything the parent does with the snapshots is post-processing.

Fault semantics
---------------
Identical to the pipe transport, because the failure surface is the
same three cases: a **command-level error** pickles back as an
``("err", exc)`` frame and the shard keeps serving (block-atomic
rejection holds across the socket); a **dead peer** (connection reset,
listener host down) surfaces as
:class:`~repro.exceptions.ShardUnavailableError` on the next frame
exchange; a **stuck peer** misses the ``request_timeout`` deadline and
is folded into the dead-peer path via
:class:`~repro.exceptions.ShardTimeoutError`.  :meth:`TcpShardWorker.kill`
models a crash by severing the socket abruptly — the listener sees EOF
and tears the shard down (killing its subprocess under
``isolation="process"``), so an uncommanded parent death never leaks
remote shards.

Security note
-------------
Frames are **pickles**: unpickling attacker-controlled bytes is code
execution.  This transport is for trusted networks only (the same trust
model as ``multiprocessing.connection``) — bind listeners to loopback
or a private interface, never the open internet.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from dataclasses import dataclass

from ..exceptions import (
    ShardTimeoutError,
    ShardUnavailableError,
    ValidationError,
)
from .transport import (
    BOOT_TIMEOUT,
    SHUTDOWN_TIMEOUT,
    ProcessShardWorker,
    ShardRpcClient,
    ShardSpec,
    dispatch_command,
)

__all__ = [
    "ShardAddress",
    "ShardHostListener",
    "TcpShardWorker",
    "recv_frame",
    "send_frame",
]

#: Frame header: unsigned 64-bit big-endian payload length.
_HEADER = struct.Struct(">Q")

#: Sanity cap on a single frame (8 GiB).  Real frames are data blocks and
#: released snapshots — megabytes at most; a length beyond this means a
#: corrupt or hostile header, and refusing eagerly beats a doomed
#: multi-gigabyte allocation.
MAX_FRAME_BYTES = 8 << 30


def send_frame(sock: socket.socket, obj) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise (``EOFError`` on clean close)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n and not chunks:
                raise EOFError("connection closed")
            raise ConnectionResetError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Read one length-prefixed frame and unpickle it.

    Raises ``EOFError`` on a clean peer close between frames,
    ``ConnectionResetError`` on a close mid-frame, ``socket.timeout``
    when the socket carries a deadline, and ``ValidationError`` on a
    header that fails the :data:`MAX_FRAME_BYTES` sanity cap.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ValidationError(
            f"frame header claims {length} bytes (> {MAX_FRAME_BYTES}); "
            "corrupt stream or untrusted peer"
        )
    return pickle.loads(_recv_exact(sock, length))


def _safe_send_frame(sock: socket.socket, message) -> bool:
    """Frame-layer twin of transport._safe_send: degrade, never raise.

    Returns ``False`` when not even the degraded error reply could be
    delivered — the caller must treat that as "stop serving".
    """
    try:
        send_frame(sock, message)
        return True
    except Exception as exc:
        try:
            send_frame(
                sock,
                (
                    "err",
                    ShardUnavailableError(
                        f"shard reply could not be serialized: {exc}"
                    ),
                ),
            )
            return True
        except Exception:  # peer vanished mid-reply; stop serving
            return False


@dataclass(frozen=True)
class ShardAddress:
    """Where a :class:`ShardHostListener` is reachable (the rendezvous).

    ``ShardedStream(transport="tcp", addresses=[...])`` assigns shard
    ``i`` to ``addresses[i % len(addresses)]`` — one listener per host,
    K shards striped across them.  Restarts reconnect to the same
    address, so a shard stays on its host across ``restart_shard``.
    """

    host: str
    port: int

    @classmethod
    def coerce(cls, value) -> "ShardAddress":
        """Accept an address in any config shape: ``ShardAddress``,
        ``"host:port"`` string, or ``(host, port)`` pair."""
        if isinstance(value, ShardAddress):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        try:
            host, port = value
        except (TypeError, ValueError):
            raise ValidationError(
                f"cannot interpret {value!r} as a shard address (want a "
                f"ShardAddress, 'host:port' string, or (host, port) pair)"
            ) from None
        return cls(host=str(host), port=int(port))

    @classmethod
    def parse(cls, text: str) -> "ShardAddress":
        """Build from a ``"host:port"`` string (config-file ergonomics)."""
        host, _, port = text.rpartition(":")
        if not host or not port.isdigit():
            raise ValidationError(
                f"expected 'host:port', got {text!r}"
            )
        return cls(host=host, port=int(port))

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class ShardHostListener:
    """Serve :class:`ShardSpec`-built shards to TCP peers (the remote end).

    Protocol per connection: the first frame is a pickled
    :class:`~repro.streaming.transport.ShardSpec`; the listener builds
    the shard and replies ``("ok", index)`` (the ready handshake — or
    ``("err", exc)`` if construction failed), then serves
    ``(command, payload)`` frames through
    :func:`~repro.streaming.transport.dispatch_command` until a
    ``"close"`` command or EOF.  EOF without a close is treated as a
    parent crash: the shard is torn down (its subprocess killed under
    ``isolation="process"``), so dead parents never leak remote shards.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` (default) picks a free port — read it
        back from :attr:`address`.  The loopback default is deliberate;
        see the module security note before binding wider.
    isolation:
        ``"thread"`` (default) builds each shard in its handler thread —
        cheap, but all shards on one listener share its GIL.
        ``"process"`` wraps each shard in a
        :class:`~repro.streaming.transport.ProcessShardWorker`
        subprocess, so shards on one host ingest on real cores — the
        configuration the cross-host scaling story needs.
    request_timeout:
        Deadline the ``isolation="process"`` wrapper applies to its own
        pipe RPCs (listener → local subprocess).  Usually left ``None``:
        the *client-side* deadline on :class:`TcpShardWorker` already
        bounds the full round trip end to end.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        isolation: str = "thread",
        request_timeout: float | None = None,
    ) -> None:
        if isolation not in ("thread", "process"):
            raise ValidationError(
                f"isolation must be 'thread' or 'process', got {isolation!r}"
            )
        self.isolation = isolation
        self.request_timeout = request_timeout
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._closed = False
        self._sock = socket.create_server((host, port), backlog=16)
        bound_host, bound_port = self._sock.getsockname()[:2]
        self.address = ShardAddress(host=bound_host, port=bound_port)
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-shard-listener-{bound_port}",
            daemon=True,
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Serving loops
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"repro-shard-conn-{self.address.port}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """One connection = one shard: handshake, then the command loop."""
        worker = None  # ProcessShardWorker under isolation="process"
        shard = None
        try:
            try:
                spec = recv_frame(conn)
                if not isinstance(spec, ShardSpec):
                    raise ValidationError(
                        f"first frame must be a ShardSpec, got "
                        f"{type(spec).__name__}"
                    )
                if self.isolation == "process":
                    worker = ProcessShardWorker(
                        spec, request_timeout=self.request_timeout
                    )
                else:
                    shard = spec.build()
            except EOFError:
                return  # peer connected and left; nothing to serve
            except BaseException as exc:
                _safe_send_frame(conn, ("err", exc))
                return
            if not _safe_send_frame(conn, ("ok", spec.index)):  # ready
                return
            while True:
                try:
                    command, payload = recv_frame(conn)
                except (EOFError, OSError):
                    return  # parent vanished: tear down in finally
                if command == "close":
                    _safe_send_frame(conn, ("ok", None))
                    return
                try:
                    if worker is not None:
                        result = worker._request(command, payload)
                    else:
                        result = dispatch_command(shard, command, payload)
                except BaseException as exc:
                    reply = ("err", exc)
                else:
                    reply = ("ok", result)
                if not _safe_send_frame(conn, reply):
                    return
        finally:
            if worker is not None:
                # Graceful if the subprocess is healthy, kill otherwise —
                # shutdown() is bounded now, so this cannot hang the
                # handler thread on a wedged subprocess.
                try:
                    worker.shutdown()
                except Exception:  # pragma: no cover - defensive
                    worker.kill()
            with self._lock:
                self._conns.discard(conn)
            conn.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting and sever every live connection.  Idempotent.

        Severing (rather than draining) is deliberate: listener close is
        host teardown, and the parent-side proxies must see the same
        thing they would see if the host died — so their next RPC raises
        :class:`~repro.exceptions.ShardUnavailableError` and the serving
        front applies partial coverage.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            self._conns.clear()
        self._sock.close()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self._accept_thread.join(timeout=SHUTDOWN_TIMEOUT)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardHostListener":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardHostListener(address={self.address}, "
            f"isolation={self.isolation!r}, closed={self._closed})"
        )


class TcpShardWorker(ShardRpcClient):
    """Parent-side proxy for one shard served by a :class:`ShardHostListener`.

    See :class:`~repro.streaming.transport.ShardRpcClient` for the
    surface contract — this class only owns the socket wire.

    Parameters
    ----------
    spec:
        The picklable shard recipe; shipped as the first frame, built on
        the listener's side of the wire.
    address:
        Where the listener is (:class:`ShardAddress` or ``(host, port)``).
    request_timeout:
        Deadline in seconds on every round trip, enforced with the
        socket's own timeout.  A missed deadline severs the connection
        (the listener sees EOF and tears the remote shard down) and
        raises :class:`~repro.exceptions.ShardTimeoutError` — the same
        mark-dead-then-raise contract as the pipe transport, covering
        stuck *and* unreachable peers with one knob.  ``None`` (default)
        waits forever.
    boot_timeout:
        Deadline on connect plus the ready handshake (remote build pays
        mechanism construction, and subprocess spawn under
        ``isolation="process"``), distinct from the steady-state
        ``request_timeout`` for the same reason the pipe transport's
        :data:`~repro.streaming.transport.BOOT_TIMEOUT` is.
    """

    def __init__(
        self,
        spec: ShardSpec,
        address,
        request_timeout: float | None = None,
        boot_timeout: float = BOOT_TIMEOUT,
        shutdown_timeout: float = SHUTDOWN_TIMEOUT,
    ) -> None:
        self._init_mirror(spec, request_timeout)
        if not isinstance(address, ShardAddress):
            host, port = address
            address = ShardAddress(host=host, port=int(port))
        self.address = address
        self.shutdown_timeout = float(shutdown_timeout)
        try:
            self._sock = socket.create_connection(
                (address.host, address.port), timeout=boot_timeout
            )
        except OSError as exc:
            raise ShardUnavailableError(
                f"shard {self.index}: no listener at {address}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            send_frame(self._sock, spec)
            status, payload = recv_frame(self._sock)
        except socket.timeout as exc:
            self.kill()
            raise ShardTimeoutError(
                f"shard {self.index} listener at {address} did not complete "
                f"the ready handshake within {boot_timeout}s"
            ) from exc
        except (EOFError, OSError) as exc:
            self.kill()
            raise ShardUnavailableError(
                f"shard {self.index} listener at {address} dropped the "
                f"connection during startup"
            ) from exc
        if status == "err":
            self.kill()
            raise payload
        # Steady state: the per-request deadline replaces the boot one.
        self._sock.settimeout(request_timeout)
        self.alive = True

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------

    def _request(self, command: str, payload):
        if not self.alive:
            raise ShardUnavailableError(
                f"shard {self.index} tcp worker is dead"
            )
        try:
            send_frame(self._sock, (command, payload))
            status, result = recv_frame(self._sock)
        except socket.timeout:
            # Must precede the OSError clause (socket.timeout subclasses
            # it).  Deadline missed: sever the connection before raising
            # so the late reply can never pair with a future request —
            # and so the listener sees EOF and reaps the remote shard.
            self.kill()
            raise ShardTimeoutError(
                f"shard {self.index} at {self.address} missed the "
                f"{self.request_timeout}s deadline (command {command!r}); "
                f"connection severed, merges degrade to partial coverage "
                f"until restart_shard({self.index})"
            ) from None
        except (EOFError, OSError) as exc:
            self.kill()
            raise ShardUnavailableError(
                f"shard {self.index} at {self.address} is unreachable "
                f"(command {command!r}); merges degrade to partial "
                f"coverage until restart_shard({self.index})"
            ) from exc
        if status == "err":
            raise result
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def kill(self) -> None:
        """Sever the connection abruptly — the crash-injection path.

        No close command: the listener sees EOF mid-protocol, exactly
        what a parent crash looks like, and tears the remote shard down
        (killing its subprocess under ``isolation="process"``).
        Idempotent and safe to race with a concurrent failure detection:
        the socket handle is captured locally and double-close is a
        no-op.
        """
        self.alive = False
        sock = self._sock
        if sock is not None:
            self._sock = None
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def shutdown(self) -> None:
        """Gracefully stop the remote shard (close command, bounded).

        Idempotent, and safe after :meth:`kill` or a detected failure.
        The close acknowledgement is bounded by ``shutdown_timeout`` —
        a wedged peer falls through to the abrupt sever.
        """
        sock = self._sock
        if self.alive and sock is not None:
            try:
                sock.settimeout(self.shutdown_timeout)
                send_frame(sock, ("close", None))
                recv_frame(sock)  # "ok" — listener is tearing down
            except (EOFError, OSError, ValidationError):
                pass
        self.kill()
