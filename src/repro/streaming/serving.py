"""The sharded serving layer: per-shard trees, merged releases, cached reads.

The Tree Mechanism's releases are *additive across disjoint sub-streams*:
each shard's released prefix sum is its exact sub-stream sum plus a sum of
independent per-node Gaussians, so summing per-shard releases yields the
logical-stream statistic with a noise variance that simply adds across
shards (:func:`repro.privacy.tree.merge_released`).  That is exactly the
property a sharded server needs to split one logical stream of length ``T``
across ``K`` workers without changing the privacy analysis — the routing is
a partition, so by parallel composition each shard runs at the full
``(ε, δ)`` and the sharded release sequence satisfies the same guarantee as
the single-tree one (:func:`repro.privacy.parameters.shard_budgets`).

:class:`ShardedStream` is that serving front:

* **Routing** — incoming blocks go round-robin (or via a caller-supplied
  key router) to ``K`` :class:`MomentShard` workers, each owning an
  independent pair of moment mechanisms (``Σ x y`` and ``Σ x xᵀ`` trees,
  or Hybrid mechanisms for horizon-free serving) over its sub-stream.
* **Pluggable backends** — the shard's moment-ingestion contract is a
  hook (:meth:`MomentShard._transform`), so the same front serves
  **Algorithm 3**: ``backend="projected"`` draws one Gordon-sized ``Φ``
  up front and hands it to every :class:`ProjectedMomentShard` (workers
  ingest ``Φx̃·y`` / ``(Φx̃)(Φx̃)ᵀ`` through the shared Step-4 rescale
  helper) *and* to the default ``PrivIncReg2`` solver, whose
  ``refresh_from_released`` then consumes merged **projected** moments.
  The Step-4 rescaling pins sensitivity at Δ₂ = 2 for any fixed ``Φ``, so
  the merge rule, budget ledger, and fault semantics below apply to both
  backends verbatim — and per-shard memory drops from ``O(d² log T)`` to
  ``O(m² log T)``.
* **Transports** — shard workers live either in the serving process
  (``transport="thread"``, the default: zero-copy merges, group
  parallelism bounded by the GIL except where BLAS releases it) or each
  in their **own interpreter** (``transport="process"``: a
  :class:`~repro.streaming.transport.ProcessShardWorker` drives the same
  ``MomentShard`` over a ``multiprocessing`` pipe, shipping released
  moments back as picklable
  :class:`~repro.privacy.tree.ReleasedMoments` snapshots).  The two
  transports build identical mechanisms from identical rng children, so
  everything below — tiers, merge rule, fault semantics — holds verbatim
  for both; see :mod:`repro.streaming.transport`.
* **Group ingestion** — :meth:`ShardedStream.observe_group` ingests a
  group of routed blocks shard-parallel (shards are independent; under
  the thread transport BLAS releases the GIL, under the process transport
  each drain thread just awaits its shard's pipe while the worker
  computes on its own core), with per-shard order preserved so tree
  releases stay bit-identical to the sequential route.
* **Merge + solve** — at refresh points the per-shard released moments are
  merged and handed to a solver (Algorithm 2's PGD pipeline via the
  estimators' ``refresh_from_released`` serve-mode hook); everything after
  the tree releases is post-processing, so the refresh cadence is a pure
  utility/latency knob.
* **Async ingestion** — ``mode="async"`` makes ``observe``/``observe_batch``
  enqueue-and-return; a worker thread drains the FIFO queue and runs the
  PGD refreshes off the hot path.  Processing order equals enqueue order,
  so the final state is identical to the synchronous path (the
  linearizability contract ``tests/test_sharded_equivalence.py`` pins
  down).  ``mode="manual"`` exposes the queue pump for deterministic
  interleaving tests.
* **Cached reads, lock-free** — every completed solve publishes a
  read-only, versioned :class:`ServedEstimate` into an
  :class:`EstimateCache` by *atomic reference swap*;
  ``current_estimate`` fan-out reads are single lock-free pointer loads
  (no hot-path mutex, no shared counter) that can never observe an
  estimate older than the last completed solve.  For scaled fan-out,
  :meth:`ShardedStream.reader` hands out per-reader
  :class:`~repro.streaming.readers.ReaderHandle` snapshots (version
  fast-path, per-reader stats), and the hub's pub-sub surface
  (:meth:`ShardedStream.subscribe`, ``wait_for_version``) turns pollers
  into waiters — see :mod:`repro.streaming.readers`.

Ingest tiers (mirroring the batched-API contract):

* ``ingest="exact"`` (default) — shards ingest via the mechanisms'
  ``advance_batch``: same rng consumption and addition order as per-point
  ingestion, so merged releases (and hence served estimates) are
  **bit-identical** to a replay of the per-shard trees, and a ``K=1``
  server matches the plain batched path bit for bit.
* ``ingest="fast"`` — shards compute block moment totals with one BLAS
  product (``Xᵀy`` / ``XᵀX``) and the trees draw noise only for the nodes
  alive at block boundaries (``TreeMechanism.advance_sum``).  Releases are
  **distributionally identical** (same active-node count, same per-node
  σ), not bit-identical; this is the high-throughput production path.

Fault semantics: :meth:`ShardedStream.kill_shard` drops a shard's
mechanisms (under the process transport it SIGKILLs the worker process);
subsequent merges degrade to the documented *partial-coverage* semantics —
the merged statistic covers the surviving sub-streams only,
``ServedEstimate.covered_steps`` and :attr:`ShardedStream.lost_steps`
report the loss (never silently dropped), and
:meth:`ShardedStream.restart_shard` brings the worker back with fresh
mechanisms (a fresh process, under ``transport="process"``) over a fresh
(still disjoint) sub-stream, which keeps the parallel-composition argument
intact.  A process worker that dies *uncommanded* is detected at the next
pipe interaction and folded into the same path: ingest raises
:class:`~repro.exceptions.ShardUnavailableError` (the block stays
refundable), merges degrade to partial coverage, and the dead worker's
acknowledged mass lands in ``lost_steps``.
"""

from __future__ import annotations

import math
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_decay,
    check_int,
    check_release_knobs,
    check_rng,
    check_unit_xy_domain,
    check_vector,
    check_xy_block,
)
from ..core.incremental_regression import MOMENT_SENSITIVITY, PrivIncReg1
from ..core.projected_regression import PrivIncReg2, projected_sizing
from ..core.unbounded import UnboundedPrivIncReg
from ..exceptions import (
    GroupIngestionError,
    NoEstimateError,
    PrivacyBudgetError,
    PublishConflictError,
    ServingError,
    ShardUnavailableError,
    StreamExhaustedError,
    ValidationError,
    WaitTimeoutError,
)
from ..geometry.base import ConvexSet, PointSet
from ..privacy.accountant import PrivacyAccountant
from ..privacy.parameters import PrivacyParams, shard_budgets, tenant_budgets
from ..privacy.release import make_release_mechanism
from ..privacy.tree import MergedRelease, merge_released
from ..sketching.gaussian import GaussianProjection, step4_rescale_block
from ..sketching.sparse_jl import SparseProjection
from .metrics import ReadStats
from .readers import EstimateHub, ReaderHandle, Subscription
from .netserve import ShardAddress, ShardHostListener, TcpShardWorker
from .transport import ProcessShardWorker, ShardSpec

__all__ = [
    "ShardedStream",
    "MomentShard",
    "ProjectedMomentShard",
    "SketchShard",
    "TenantShard",
    "ProcessShardWorker",
    "EstimateCache",
    "ServedEstimate",
    "EstimateHub",
    "ReaderHandle",
    "Subscription",
]

_CLOSE = object()  # queue sentinel


def _check_decay_groups(decays) -> tuple[float, ...]:
    """Validate a declared tuple of shared-Gram γ groups (PRIMO serving).

    ``None`` means the single plain group ``(1.0,)``.  Each entry must be
    a valid forgetting factor (``γ ∈ (0, 1]``) and the entries must be
    distinct — one shared Gram mechanism is built per group, so a repeat
    would silently spend gram budget twice on the same weighting.
    """
    if decays is None:
        return (1.0,)
    groups = tuple(
        check_decay(f"decays[{i}]", g) for i, g in enumerate(decays)
    )
    if not groups:
        raise ValidationError("decays must declare at least one γ group")
    if len(set(groups)) != len(groups):
        raise ValidationError(f"decays entries must be distinct, got {groups!r}")
    return groups


@dataclass(frozen=True)
class ServedEstimate:
    """One published estimate: the versioned unit of the serving cache.

    Attributes
    ----------
    version:
        The solver's ``estimate_version`` at publication — equals the
        number of completed solves, so readers can detect refreshes.
    theta:
        The released parameter, as a **read-only** array (reads share the
        buffer; copy before mutating).
    timestep:
        Logical stream position (total points processed) when the solve
        completed.
    covered_steps:
        Stream mass the merged moments actually covered; less than
        ``timestep`` exactly when shards died (partial coverage).
    """

    version: int
    theta: np.ndarray
    timestep: int
    covered_steps: int


class EstimateCache:
    """A versioned, single-slot, lock-free-read cache for estimate fan-out.

    The read path is the point: ``get`` is a single attribute load of the
    current frozen :class:`ServedEstimate` — no lock, no counter mutation,
    no allocation — so ``current_estimate`` fan-out scales with reader
    threads instead of serializing on a hot-path mutex.  This is sound
    because the cache is published by *atomic reference swap*: ``put``
    builds a fully-frozen immutable entry first and installs it with one
    reference assignment (atomic under the GIL, and a single store on
    free-threaded builds), so a reader either sees the old entry or the
    new one, never a torn mixture.  The DP cost of the estimate was paid
    at release time; reads are pure post-processing and should cost what
    the hardware charges for a pointer load.

    ``put`` keeps a writer-side lock for the things that *do* need
    serialization: the version-monotonicity check (the version is the
    publisher's solve counter, so a reader can never observe an estimate
    older than the last completed solve), the equal-version payload check
    (``same version ⇒ same payload`` — what the per-reader snapshot fast
    path in :mod:`repro.streaming.readers` relies on), the write counter,
    and waking :meth:`wait_for_version` waiters.

    Read statistics live on :class:`~repro.streaming.readers.ReaderHandle`
    objects (aggregated on demand), never on this hot path; publisher-side
    stats come from :meth:`stats`, a single consistent snapshot.
    """

    def __init__(self) -> None:
        self._write_lock = threading.Lock()
        # Waiters block on the writer lock (waiting is never the hot
        # path); `put` notifies under the same lock, so no wakeup can be
        # missed between a waiter's version check and its wait().
        self._published = threading.Condition(self._write_lock)
        self._entry: ServedEstimate | None = None
        self._writes = 0

    def put(
        self, theta: np.ndarray, version: int, timestep: int, covered_steps: int
    ) -> ServedEstimate:
        """Publish a new estimate (atomic reference swap); returns the entry.

        Raises
        ------
        PublishConflictError
            If ``version`` is lower than the cached entry's, or equal to
            it with a *different* payload — version-based refresh
            detection would otherwise miss a changed estimate.  An
            identical-payload republish under the current version is an
            idempotent no-op (the existing entry is returned unchanged,
            and the write counter does not advance).
        """
        frozen = np.array(theta, dtype=float)
        frozen.setflags(write=False)
        entry = ServedEstimate(
            version=int(version),
            theta=frozen,
            timestep=int(timestep),
            covered_steps=int(covered_steps),
        )
        with self._write_lock:
            current = self._entry
            if current is not None:
                if entry.version < current.version:
                    raise PublishConflictError(
                        f"cache version must not decrease: {entry.version} < "
                        f"{current.version}"
                    )
                if entry.version == current.version:
                    if (
                        entry.timestep == current.timestep
                        and entry.covered_steps == current.covered_steps
                        and np.array_equal(entry.theta, current.theta)
                    ):
                        return current
                    raise PublishConflictError(
                        f"duplicate publish of version {entry.version} with a "
                        f"different payload — readers detect refreshes by "
                        f"version, so the solve counter must advance whenever "
                        f"the served estimate changes"
                    )
            self._entry = entry
            self._writes += 1
            self._published.notify_all()
        return entry

    def peek(self) -> ServedEstimate | None:
        """The current entry, or ``None`` before the first publish.

        One atomic reference load — the lock-free primitive every read
        path (``get``, the reader handles, the version property) is built
        on.
        """
        return self._entry

    def get(self) -> ServedEstimate:
        """The current entry — one lock-free pointer read, no solver work.

        Raises
        ------
        NoEstimateError
            If nothing was ever published (no solve has completed).  The
            typed subclass of :class:`~repro.exceptions.ServingError` /
            :class:`LookupError` lets readers distinguish "no estimate
            yet" from real serving failures.
        """
        entry = self._entry
        if entry is None:
            raise NoEstimateError(
                "no estimate has been published to this cache yet — "
                "ingest data and call flush() (or wait for the first "
                "scheduled refresh) so a merge + solve can publish one"
            )
        return entry

    def wait_for_version(
        self, version: int, timeout: float | None = None, abort=None
    ) -> ServedEstimate:
        """Block until an entry with ``version`` (or newer) is published.

        Turns pollers into waiters: instead of spinning on
        :attr:`version`, a reader parks on the cache's condition variable
        and is woken by the ``put`` that satisfies it.  Returns the entry
        that satisfied the wait (which may be newer than ``version``).

        Parameters
        ----------
        abort:
            Optional callable evaluated together with the version
            predicate.  Returning a non-empty string aborts the wait with
            a :class:`~repro.exceptions.ServingError` carrying that
            message — how an owner (e.g. a closing
            :class:`~repro.streaming.readers.EstimateHub`) releases
            parked waiters that can never be satisfied; pair it with
            :meth:`wake_waiters` when the abort condition changes.

        Raises
        ------
        WaitTimeoutError
            If ``timeout`` (seconds) elapses first.  ``timeout=None``
            waits indefinitely.
        """
        version = int(version)
        entry = self._entry  # fast path: already satisfied, skip the lock
        if entry is not None and entry.version >= version:
            return entry
        with self._published:
            self._published.wait_for(
                lambda: (
                    self._entry is not None and self._entry.version >= version
                )
                or (abort is not None and bool(abort())),
                timeout=timeout,
            )
            entry = self._entry
            if entry is not None and entry.version >= version:
                return entry
            reason = abort() if abort is not None else None
            if reason:
                raise ServingError(str(reason))
            have = -1 if entry is None else entry.version
            raise WaitTimeoutError(
                f"no estimate with version >= {version} was published "
                f"within {timeout}s (current version: {have})"
            )

    def wake_waiters(self) -> None:
        """Force every parked :meth:`wait_for_version` to re-check.

        For owners whose ``abort`` condition just changed (e.g. a hub
        closing); a no-op for waiters whose predicates are still false.
        """
        with self._published:
            self._published.notify_all()

    @property
    def version(self) -> int:
        """Version of the current entry (−1 when empty) — lock-free."""
        entry = self._entry
        return -1 if entry is None else entry.version

    @property
    def writes(self) -> int:
        """Completed publishes (idempotent republishes excluded)."""
        with self._write_lock:
            return self._writes

    def stats(self) -> dict:
        """One consistent publisher-side snapshot (version/writes/coverage).

        Taken under the writer lock so ``version`` and ``writes`` can
        never disagree mid-publish — the single sanctioned way to read
        cache statistics (benchmarks used to read the bare attributes
        racily).  Reader-side counts live on the handles; aggregate them
        via :meth:`repro.streaming.readers.EstimateHub.read_stats`.
        """
        with self._write_lock:
            entry = self._entry
            return {
                "version": -1 if entry is None else entry.version,
                "writes": self._writes,
                "timestep": None if entry is None else entry.timestep,
                "covered_steps": None if entry is None else entry.covered_steps,
            }


class MomentShard:
    """One shard worker: independent moment mechanisms over a sub-stream.

    Owns a cross-moment mechanism (element shape ``(moment_dim,)``) and a
    second-moment mechanism (``(moment_dim, moment_dim)``), each at half
    the shard's budget — exactly the split Algorithms 2 and 3 apply to
    their two trees.

    This is the *pluggable shard backend* of the serving front: the
    moment-ingestion contract lives here once —

    * ``ingest`` maps the routed covariate block through :meth:`_transform`
      into the ``(k, moment_dim)`` rows the moment streams are built from,
      then advances both mechanisms (``advance_batch`` exact tier, or one
      BLAS ``rowsᵀy`` / ``rowsᵀrows`` product + ``advance_sum`` fast tier);
    * subclasses choose the space.  The base class is Algorithm 2's
      backend (``moment_dim = d``, identity transform);
      :class:`ProjectedMomentShard` is Algorithm 3's (``moment_dim = m``,
      Step-4 rescaled ``Φx̃`` rows through a *shared* ``Φ``).

    Sensitivity is Δ₂ = 2 in both cases (the unit domain for raw moments;
    the Step-4 rescaling for projected ones), so the budget split, the
    noise calibration, and the merge rule are backend-agnostic.
    """

    #: Class-level backend tag (subclasses override).
    backend = "moment"

    #: Release-mechanism family the moment streams are built with.
    #: ``None`` defers to the ``mechanism`` ctor knob; subclasses may pin
    #: a family (the sketch backend pins ``"sketch"``) while the
    #: user-facing ``mechanism`` knob and the wire spec keep their value.
    release_family: str | None = None

    def __init__(
        self,
        index: int,
        dim: int,
        budget: PrivacyParams,
        cross_rng: np.random.Generator,
        gram_rng: np.random.Generator,
        mechanism: str = "tree",
        shard_horizon: int | None = None,
        moment_dim: int | None = None,
        decay: float | None = None,
        window: int | float | None = None,
    ) -> None:
        self.index = index
        self.dim = dim
        self.moment_dim = dim if moment_dim is None else moment_dim
        self.budget = budget
        self.mechanism = mechanism
        self.shard_horizon = shard_horizon
        self.decay, self.window = check_release_knobs(decay, window)
        self.steps = 0
        self.alive = True
        #: Set once the front has credited this worker's ingested mass to
        #: its ``lost_steps`` ledger (see ShardedStream._note_shard_death).
        self.lost_accounted = False
        half = budget.halve()
        m = self.moment_dim
        # One factory call per moment stream: ``mechanism``/``decay``/
        # ``window`` select among Tree, Hybrid, DecayedTree, SlidingWindow
        # and SketchNoise implementations of the ReleaseMechanism protocol,
        # with the plain configurations bit-identical to the historical
        # inline construction (same ctor arguments, same rng).
        family = self.release_family or mechanism
        self.cross = make_release_mechanism(
            shape=(m,),
            l2_sensitivity=MOMENT_SENSITIVITY,
            params=half,
            rng=cross_rng,
            mechanism=family,
            horizon=shard_horizon,
            decay=self.decay,
            window=self.window,
        )
        self.gram = make_release_mechanism(
            shape=(m, m),
            l2_sensitivity=MOMENT_SENSITIVITY,
            params=half,
            rng=gram_rng,
            mechanism=family,
            horizon=shard_horizon,
            decay=self.decay,
            window=self.window,
        )

    def _transform(self, xs: np.ndarray) -> np.ndarray:
        """Rows the moment streams are built from (identity for Alg. 2)."""
        return xs

    def ingest(self, xs: np.ndarray, ys: np.ndarray, fast: bool) -> None:
        """Feed a routed block to both moment mechanisms.

        Both moment inputs are materialized *before* either tree advances:
        with the block pre-validated (finite, unit-normalized) and the two
        trees in step-lockstep, every failure the library can raise
        (validation, capacity) then happens before any tree mutates — the
        no-consumption guarantee ``_process_block``'s capacity refund
        relies on.
        """
        rows = self._transform(xs)
        k = rows.shape[0]
        if fast:
            # One BLAS product per moment; trees draw only surviving-node
            # noise (distributional tier).  Under ``decay`` the block
            # total is γ-weighted — ``advance_sum``'s contract is
            # ``Σ γ^{k−1−i} v_i`` so the mechanism's internal fold
            # ``γ^k·prefix + total`` reproduces the sequential recursion.
            if self.decay is not None and self.decay != 1.0:
                weights = self.decay ** np.arange(k - 1, -1, -1, dtype=float)
                cross_total = (weights * ys) @ rows
                gram_total = (weights[:, None] * rows).T @ rows
            else:
                cross_total = ys @ rows
                gram_total = rows.T @ rows
            self.cross.advance_sum(cross_total, k)
            self.gram.advance_sum(gram_total, k)
        else:
            cross_values = rows * ys[:, None]
            gram_values = rows[:, :, None] * rows[:, None, :]
            self.cross.advance_batch(cross_values)
            self.gram.advance_batch(gram_values)
        self.steps += k

    def released(self):
        """The (cross, gram) handles for :func:`~repro.privacy.tree.merge_released`.

        The transport seam of the merge path: in-process shards hand over
        their **live** mechanisms (zero-copy — the merge reads
        ``current_sum()`` directly), while
        :class:`~repro.streaming.transport.ProcessShardWorker` overrides
        the same method to fetch picklable
        :class:`~repro.privacy.tree.ReleasedMoments` snapshots over its
        pipe.  ``merge_released`` accepts both interchangeably.
        """
        return self.cross, self.gram

    def memory_floats(self) -> int:
        """Floats held by this shard's mechanisms (0 once killed).

        ``O(moment_dim² log T)`` per shard — the Algorithm-3 backend's
        whole point: ``m² log T`` instead of ``d² log T``.
        """
        if not self.alive:
            return 0
        return self.cross.memory_floats() + self.gram.memory_floats()

    def kill(self) -> None:
        """Drop the mechanisms; the shard's ingested mass is lost."""
        self.alive = False
        self.cross = None
        self.gram = None

    def shutdown(self) -> None:
        """Transport-uniform teardown hook (nothing to release in-process)."""


class ProjectedMomentShard(MomentShard):
    """Algorithm 3's shard backend: projected moments through a shared ``Φ``.

    Workers ingest ``Φx̃·y`` (``(m,)``) and ``(Φx̃)(Φx̃)ᵀ`` (``(m, m)``)
    where ``x̃`` is the Step-4 rescaled covariate — computed through the
    *same* :func:`~repro.sketching.gaussian.step4_rescale_block` helper
    ``PrivIncReg2.observe_batch`` uses, against a single projection drawn
    once by the serving front and shared by every shard (and by the
    solver, whose ``refresh_from_released`` then receives merged moments
    living in the one projected space).  Because the rescaling pins the
    projected sensitivity at Δ₂ = 2 for *any* fixed ``Φ``, the per-shard
    noise calibration and the noise-preserving merge rule carry over from
    the Algorithm-2 backend verbatim.

    The projection is shared state but strictly read-only after
    construction, so thread-parallel group ingestion across shards needs
    no synchronization around it.
    """

    backend = "projected"

    def __init__(
        self,
        index: int,
        dim: int,
        budget: PrivacyParams,
        cross_rng: np.random.Generator,
        gram_rng: np.random.Generator,
        projection,
        mechanism: str = "tree",
        shard_horizon: int | None = None,
        decay: float | None = None,
        window: int | float | None = None,
    ) -> None:
        super().__init__(
            index=index,
            dim=dim,
            budget=budget,
            cross_rng=cross_rng,
            gram_rng=gram_rng,
            mechanism=mechanism,
            shard_horizon=shard_horizon,
            moment_dim=projection.projected_dim,
            decay=decay,
            window=window,
        )
        self.projection = projection

    def _transform(self, xs: np.ndarray) -> np.ndarray:
        return step4_rescale_block(self.projection, xs)


class SketchShard(ProjectedMomentShard):
    """The sketch-native shard backend: privatize the sketch, not the moments.

    The ingest geometry is :class:`ProjectedMomentShard`'s — Step-4
    rescaled rows through a *shared* projection — but the projection is a
    **sparse-JL** ``Φ`` (:class:`~repro.sketching.sparse_jl.SparseProjection`,
    the paper's footnote 16: ``~1/s`` of the entries non-zero, so the
    per-block pass costs ``O(nnz)`` instead of the dense BLAS product),
    and the noise source is not a tree at all: both moment streams run
    :class:`~repro.privacy.release.SketchNoiseMechanism`, which keeps the
    exact sketched running sums and adds **one Gaussian draw per ingested
    block** at the Step-4-pinned sensitivity (the *Private Sketches for
    Linear Regression* release model).  Because the Step-4 rescale pins
    Δ₂ = 2 for any fixed ``Φ``, the budget split, calibration, and the
    noise-preserving merge rule carry over verbatim; released snapshots
    are ordinary :class:`~repro.privacy.tree.ReleasedMoments`, so the
    merge, solver refresh, read path, and partial-coverage accounting
    upstream never notice the backend.

    The user-facing ``mechanism`` knob stays ``"tree"`` (and rides the
    wire spec unchanged); the sketch family is pinned here via
    :attr:`release_family` so every transport builds the same mechanisms.
    """

    backend = "sketch"

    release_family = "sketch"


class TenantShard:
    """One multi-tenant shard: a **shared** Gram tree + per-tenant cross trees.

    The PRIMO shard backend (*Private Regression in Multiple Outcomes*):
    when ``k`` outcome streams share one covariate stream, the expensive
    ``(d, d)`` second-moment statistic is identical for every tenant, so
    this shard privatizes it **once** — one Gram tree at ``(ε/2, δ/2)``,
    independent of the tenant count — and keeps only a cheap ``(d,)``
    cross tree per tenant, each at a ``(ε/(2·cap), δ/(2·cap))`` slot of
    the other half (:func:`~repro.privacy.parameters.tenant_budgets`).
    Ingesting ``(x, y_1..y_k)`` advances the Gram tree exactly once and
    tenant ``j``'s cross tree with ``x·y_j``, so the per-element privacy
    loss is at most ``ε/2 + cap·ε/(2·cap) = ε`` — the same total budget a
    single-tenant shard spends, now serving ``k`` models.

    Tenants are dynamic: :meth:`add_tenant` occupies a free capacity slot
    with a fresh cross tree, :meth:`remove_tenant` retires one.  Slot
    reuse is sound because a removed tenant's tree never ingests again —
    no stream element is ever seen by two occupants of one slot, so the
    per-element bound above survives any add/remove schedule.

    For a single tenant both budget pieces equal ``budget.halve()``
    bit-exactly and the ingest arithmetic reduces to
    :class:`MomentShard`'s, which is what makes a ``k = 1`` multi-tenant
    stream bit-identical to the plain sharded path (given the same rng
    children — see :class:`~repro.streaming.tenancy.MultiTenantStream`).
    """

    backend = "tenant"

    def __init__(
        self,
        index: int,
        dim: int,
        budget: PrivacyParams,
        tenant_rngs,
        gram_rng: np.random.Generator,
        tenants,
        tenant_capacity: int | None = None,
        mechanism: str = "tree",
        shard_horizon: int | None = None,
        decays: "tuple[float, ...] | None" = None,
        tenant_decays: "tuple[float, ...] | None" = None,
    ) -> None:
        if mechanism != "tree":
            raise ValidationError(
                "TenantShard requires mechanism='tree' (the PRIMO serving "
                "layer assumes a known horizon)"
            )
        names = tuple(str(name) for name in tenants)
        if len(set(names)) != len(names):
            raise ValidationError(f"tenant names must be unique, got {names!r}")
        if not names:
            raise ValidationError("TenantShard needs at least one tenant")
        tenant_rngs = tuple(tenant_rngs)
        if len(tenant_rngs) != len(names):
            raise ValidationError(
                f"need one rng per tenant: {len(names)} tenants, "
                f"{len(tenant_rngs)} rngs"
            )
        self.decays = _check_decay_groups(decays)
        if tenant_decays is None:
            tenant_decays = tuple(self.decays[0] for _ in names)
        tenant_decays = tuple(float(g) for g in tenant_decays)
        if len(tenant_decays) != len(names):
            raise ValidationError(
                f"need one decay per tenant: {len(names)} tenants, "
                f"{len(tenant_decays)} tenant_decays"
            )
        for g in tenant_decays:
            if g not in self.decays:
                raise ValidationError(
                    f"tenant_decays entry {g!r} is not a declared γ group "
                    f"(decays={self.decays!r}); the shared Gram stream is "
                    f"privatized once per declared group"
                )
        self.index = index
        self.dim = dim
        self.moment_dim = dim
        self.budget = budget
        self.mechanism = mechanism
        self.shard_horizon = shard_horizon
        self.tenant_capacity = check_int(
            "tenant_capacity",
            len(names) if tenant_capacity is None else tenant_capacity,
            minimum=len(names),
        )
        self.steps = 0
        self.alive = True
        self.lost_accounted = False
        gram_budget, slot_budgets = tenant_budgets(budget, self.tenant_capacity)
        #: Every slot carries the same budget; keep one for later adds.
        self._slot_budget = slot_budgets[0]
        #: Tenant → γ group assignment (merges pick the matching Gram).
        self.tenant_decay: dict[str, float] = dict(zip(names, tenant_decays))
        # Cross trees first, then the Gram trees — the same construction
        # order as MomentShard.  Insertion order of this dict is the
        # tenant order every merge indexes by.
        self.cross: dict[str, object] = {}
        for name, rng in zip(names, tenant_rngs):
            self.cross[name] = self._make_tree(
                (dim,), self._slot_budget, rng, self.tenant_decay[name]
            )
        # One shared Gram mechanism per declared γ group, each at an equal
        # split of the gram half (every element enters every group, so the
        # groups compose sequentially — split(1) leaves the single plain
        # group at the historical budget bit-exactly).  Group 0 consumes
        # ``gram_rng`` itself — the exact generator the single-group shard
        # uses — and later groups consume its spawned siblings (spawning
        # advances the spawn counter, never the bit stream).
        group_budgets = gram_budget.split(len(self.decays))
        extra_rngs = (
            tuple(gram_rng.spawn(len(self.decays) - 1))
            if len(self.decays) > 1
            else ()
        )
        group_rngs = (gram_rng,) + extra_rngs
        self.grams: dict[float, object] = {}
        for g, g_budget, g_rng in zip(self.decays, group_budgets, group_rngs):
            self.grams[g] = self._make_tree((dim, dim), g_budget, g_rng, g)

    def _make_tree(self, shape, params, rng, decay: float):
        """One tree-family release mechanism, γ-decayed when ``decay < 1``.

        ``decay == 1.0`` builds the plain :class:`TreeMechanism` (not a
        γ=1 decayed wrapper), so single-group shards stay type- and
        bit-identical to the historical construction.
        """
        return make_release_mechanism(
            shape=shape,
            l2_sensitivity=MOMENT_SENSITIVITY,
            params=params,
            rng=rng,
            mechanism="tree",
            horizon=self.shard_horizon,
            decay=None if decay == 1.0 else decay,
        )

    @property
    def gram(self):
        """The primary (group-0) shared Gram mechanism, or ``None`` if killed.

        Kept for diagnostics and the single-group conformance suites;
        merges index :meth:`released`'s per-group tuple instead.
        """
        if self.grams is None:
            return None
        return self.grams[self.decays[0]]

    def tenants(self) -> tuple[str, ...]:
        """Active tenant names, in the order merges index them."""
        return tuple(self.cross)

    def add_tenant(
        self,
        name: str,
        rng: np.random.Generator,
        decay: float | None = None,
    ) -> None:
        """Occupy a free capacity slot with a fresh cross tree for ``name``.

        ``decay`` assigns the tenant to one of the shard's declared γ
        groups (default: the primary group); its cross tree uses the same
        weighting, so the tenant's merged moments stay consistent.
        """
        name = str(name)
        if name in self.cross:
            raise ValidationError(f"tenant {name!r} already exists")
        if len(self.cross) >= self.tenant_capacity:
            raise PrivacyBudgetError(
                f"all {self.tenant_capacity} tenant slots are occupied; "
                f"remove a tenant before adding {name!r} (the slot budgets "
                f"are what keep the per-element loss within the total)"
            )
        g = self.decays[0] if decay is None else float(decay)
        if g not in self.decays:
            raise ValidationError(
                f"decay {g!r} is not a declared γ group "
                f"(decays={self.decays!r}); groups are fixed at "
                f"construction — the gram budget was split across them"
            )
        self.tenant_decay[name] = g
        self.cross[name] = self._make_tree((self.dim,), self._slot_budget, rng, g)

    def remove_tenant(self, name: str) -> None:
        """Retire ``name``'s cross tree, freeing its capacity slot."""
        if str(name) not in self.cross:
            raise ValidationError(f"unknown tenant {name!r}")
        del self.cross[str(name)]
        del self.tenant_decay[str(name)]

    def ingest(self, xs: np.ndarray, ys: np.ndarray, fast: bool) -> None:
        """Feed a routed block: the Gram tree once, each tenant's cross once.

        ``ys`` is the ``(n, k)`` outcome matrix, one column per active
        tenant in :meth:`tenants` order.  All moment inputs are
        materialized first, and the Gram tree — never behind any cross
        tree in step count, so the first to hit capacity — advances before
        the crosses: any failure the library can raise happens before a
        tree mutates, preserving the block-atomic no-consumption
        guarantee.  Per tree the arithmetic is exactly
        :class:`MomentShard.ingest`'s, so a single tenant's trees stay
        bit-identical to a single-tenant shard's.
        """
        Y = np.asarray(ys, dtype=float)
        if Y.ndim == 1:
            Y = Y[:, None]
        if Y.shape != (xs.shape[0], len(self.cross)):
            raise ValidationError(
                f"outcome block must have shape ({xs.shape[0]}, "
                f"{len(self.cross)}) — one column per active tenant — got "
                f"{Y.shape}"
            )
        k = xs.shape[0]
        if fast:
            # γ-weighted block totals per group — the decayed
            # ``advance_sum`` contract; γ = 1 keeps the plain one-product
            # totals bit-exactly.
            weights = {
                g: g ** np.arange(k - 1, -1, -1, dtype=float)
                for g in self.decays
                if g != 1.0
            }
            gram_totals = []
            for g in self.decays:
                if g == 1.0:
                    gram_totals.append(xs.T @ xs)
                else:
                    gram_totals.append((weights[g][:, None] * xs).T @ xs)
            cross_totals = []
            for j, name in enumerate(self.cross):
                g = self.tenant_decay[name]
                col = Y[:, j] if g == 1.0 else weights[g] * Y[:, j]
                cross_totals.append(col @ xs)
            for mechanism, total in zip(self.grams.values(), gram_totals):
                mechanism.advance_sum(total, k)
            for mechanism, total in zip(self.cross.values(), cross_totals):
                mechanism.advance_sum(total, k)
        else:
            # The decayed mechanisms fade internally, so every γ group
            # (and every tenant tree) ingests the same raw moment values.
            gram_values = xs[:, :, None] * xs[:, None, :]
            cross_values = [Y[:, j, None] * xs for j in range(Y.shape[1])]
            for mechanism in self.grams.values():
                mechanism.advance_batch(gram_values)
            for mechanism, values in zip(self.cross.values(), cross_values):
                mechanism.advance_batch(values)
        self.steps += k

    def released(self):
        """The (per-tenant cross tuple, per-group gram tuple) merge handles.

        Same seam as :meth:`MomentShard.released`, with both slots widened
        to tuples — one cross handle per active tenant in :meth:`tenants`
        order, one Gram handle per declared γ group in ``decays`` order.
        The process transport snapshots each element as a
        :class:`~repro.privacy.tree.ReleasedMoments`, so the wire format
        is unchanged: the same snapshots, just ``k`` (and ``G``) of them.
        """
        return tuple(self.cross.values()), tuple(self.grams.values())

    def memory_floats(self) -> int:
        """Floats held by the shard: ``O((G·d² + k·d) log T)`` — the PRIMO
        economy, vs ``k·O(d² log T)`` for ``k`` independent shards."""
        if not self.alive:
            return 0
        return sum(
            mechanism.memory_floats() for mechanism in self.grams.values()
        ) + sum(mechanism.memory_floats() for mechanism in self.cross.values())

    def kill(self) -> None:
        """Drop the mechanisms; the shard's ingested mass is lost."""
        self.alive = False
        self.cross = None
        self.grams = None

    def shutdown(self) -> None:
        """Transport-uniform teardown hook (nothing to release in-process)."""


class ShardedStream:
    """A sharded, optionally asynchronous, algorithm-generic serving front.

    Fronts **Algorithm 2** (``backend="moment"``, the default: raw
    ``d``-dimensional moment shards solved by ``PrivIncReg1``),
    **Algorithm 3** (``backend="projected"``: one Gordon-sized ``Φ`` drawn
    up front, Step-4-rescaled projected moment shards in dimension
    ``m ≪ d``, solved by a ``PrivIncReg2`` sharing that same ``Φ``), or
    the **private-sketch** variant (``backend="sketch"``: the same shared
    ``Φ`` geometry but sparse-JL, with per-block sketch-side noise in
    place of tree noise — :class:`SketchShard`).  The routing, merge
    rule, budget ledger, cache, async queue, and fault semantics are
    backend-agnostic — all backends pin their streams' sensitivity at
    Δ₂ = 2, so the per-shard calibration and the noise-preserving merge
    carry over unchanged.

    Parameters
    ----------
    constraint:
        The constraint set ``C``; fixes the dimension.
    params:
        The logical stream's total ``(ε, δ)`` budget.
    shards:
        Number of shard workers ``K``.
    horizon:
        Logical stream length ``T``.  Required for ``mechanism="tree"``
        (noise calibration) and for the default known-horizon solver; may
        be ``None`` with ``mechanism="hybrid"``.
    refresh_every:
        Run the merge + PGD refresh whenever the processed count crosses a
        multiple of this (and at the horizon); ``None`` (default)
        refreshes after every processed block.  Post-processing only.
    ingest:
        ``"exact"`` (bit-identical tier) or ``"fast"`` (distributional
        tier, tree shards only) — see the module docstring.
    mechanism:
        ``"tree"`` (known horizon) or ``"hybrid"`` (horizon-free shards).
    decay:
        Optional forgetting factor ``γ ∈ (0, 1]``: every shard's moment
        mechanisms become γ-decayed (tree or hybrid), releases track
        ``Σ γ^{t−i} υ_i``, and refreshes pass the merged effective weight
        ``(1−γ^t)/(1−γ)`` to the solver — recent points dominate the
        served estimate on drifting streams.  ``γ = 1`` is bit-identical
        to the plain front.  Mutually exclusive with ``window``; works
        with both ingest tiers (the fast tier computes γ-weighted block
        totals with one weighted BLAS product).
    window:
        Optional sliding window ``W``: shard mechanisms become chunked
        :class:`~repro.privacy.release.SlidingWindowMechanism` rings that
        hard-expire elements older than ``W`` steps.  Finite windows are
        horizon-free (pair with ``mechanism="hybrid"`` for unbounded
        recency serving) but need ``ingest="exact"`` — pre-reduced fast
        totals cannot be split at expiry boundaries.  ``window=inf`` is
        the degenerate never-expiring ring, bit-identical to the plain
        tree front.  Mutually exclusive with ``decay``.
    composition:
        Budget mode for :func:`~repro.privacy.parameters.shard_budgets`:
        ``"parallel"`` (default — disjoint routing, full budget per shard)
        or ``"basic"`` (``(ε/K, δ/K)`` per shard).
    router:
        ``"round_robin"`` (default) or a callable
        ``(block_index, xs, ys) -> int`` returning a shard index (taken
        mod ``K``; dead shards fall through to the next live one).
    mode:
        ``"sync"`` — process on the caller's thread; ``"async"`` — enqueue
        and return, a daemon worker processes FIFO; ``"manual"`` — enqueue
        and let the caller :meth:`pump` (deterministic interleavings for
        tests).
    transport:
        ``"thread"`` (default) — shard workers share this interpreter;
        ``"process"`` — each shard runs in its own interpreter behind a
        ``multiprocessing`` pipe
        (:class:`~repro.streaming.transport.ProcessShardWorker`);
        ``"tcp"`` — each shard is served by a
        :class:`~repro.streaming.netserve.ShardHostListener` over
        length-prefixed frames
        (:class:`~repro.streaming.netserve.TcpShardWorker`), which is
        how shards run on separate hosts.  Remote transports ship
        released moments back as picklable
        :class:`~repro.privacy.tree.ReleasedMoments` snapshots.  All
        transports build the same mechanisms from the same rng children,
        so the ingest tiers, merge rule, and fault semantics are
        transport-independent (``tests/test_process_serving.py``,
        ``tests/test_tcp_serving.py``); a custom ``projection`` or
        router must be picklable-compatible (the projection ships in the
        spawn payload; the router always runs in the parent).
        Orthogonal to ``mode``.
    request_timeout:
        Deadline in seconds on every shard RPC (remote transports only).
        A worker that misses it is *alive but stuck* — it is killed /
        disconnected and the shard folds into the partial-coverage fault
        path (:class:`~repro.exceptions.ShardTimeoutError`, a
        :class:`~repro.exceptions.ShardUnavailableError`), exactly as if
        it had crashed.  ``None`` (default) waits forever — the only
        option for ``transport="thread"``, where the shard call is a
        plain method call with no wire to deadline.
    addresses:
        Where the shard host listeners are (``transport="tcp"`` only): a
        list of :class:`~repro.streaming.netserve.ShardAddress`,
        ``"host:port"`` strings, or ``(host, port)`` pairs; shard ``i``
        connects to ``addresses[i % len(addresses)]``, and restarts
        reconnect to the same address.  ``None`` (the default) boots a
        private loopback listener inside this stream — single-host tcp
        serving with zero setup, the configuration the test suite and CI
        exercise.
    heartbeat_every:
        Period in seconds of the health-check loop: a daemon thread
        pings every live shard (one
        :meth:`~repro.streaming.transport.ShardRpcClient.ping` RPC,
        sharing the ingestion lock) so dead or stuck workers are
        detected within ``heartbeat_every + request_timeout`` seconds
        even when no traffic is flowing — without a ``request_timeout``
        the ping only detects *crashed* workers (pipe/socket EOF), since
        an unbounded ping to a wedged worker would block.  ``None``
        (default) disables the loop; detection then happens on the next
        RPC, exactly as before.
    restart_policy:
        ``"never"`` (default) — dead shards stay dead until an explicit
        :meth:`restart_shard`; ``"auto"`` — the heartbeat loop restarts
        any dead shard it finds (requires ``heartbeat_every``), with the
        same budget semantics as a manual restart (free under parallel
        composition; charged — and refused on an empty ledger — under
        basic).  Counted in :meth:`heartbeat_stats`.
    shard_horizon:
        Tree capacity per shard; defaults to the full ``horizon`` so any
        routing imbalance fits (slightly conservative noise).  Set to
        ``ceil(T/K)`` when the router guarantees balance.
    backend:
        ``"moment"`` (default — Algorithm 2's raw-moment shards),
        ``"projected"`` (Algorithm 3's shared-Φ projected-moment shards;
        requires ``mechanism="tree"`` and a ``horizon``), or ``"sketch"``
        (shared sparse-JL ``Φ`` with per-block sketch-side noise instead
        of tree noise — :class:`SketchShard`; requires
        ``mechanism="tree"`` and a ``horizon``, refuses ``decay`` and
        ``window``).
    x_domain:
        The covariate domain ``X`` (backends ``"projected"`` and
        ``"sketch"`` only) — needed to Gordon-size ``Φ`` when neither
        ``projection`` nor ``projected_dim`` is given, and by the default
        ``PrivIncReg2`` solver in any case.
    projection:
        Optional pre-built shared projection (anything exposing
        ``matrix``/``apply``/``projected_dim``, e.g. a
        :class:`~repro.sketching.sparse_jl.SparseProjection`); drawn
        internally from ``rng`` when omitted — Gaussian under
        ``backend="projected"``, sparse-JL under ``backend="sketch"``.
        Privacy is unaffected by the choice — the Step-4 rescaling pins
        Δ₂ = 2 for any fixed Φ.
    projected_dim, gamma:
        Explicit ``m`` override / distortion override for the internally
        drawn ``Φ`` (backends ``"projected"``/``"sketch"`` only; the
        default sizing is
        :func:`~repro.core.projected_regression.projected_sizing`, the
        same arithmetic ``PrivIncReg2`` applies).
    sparsity_factor:
        Sparsity ``s`` of the internally drawn sparse-JL ``Φ``
        (``backend="sketch"`` only; default 3): each entry is non-zero
        with probability ``1/s``, so per-block ingest costs ``~1/s`` of
        the dense product.  Refused with a pre-built ``projection`` —
        pass ``SparseProjection(..., sparsity_factor=s)`` directly
        instead.
    solver:
        Any object with ``refresh_from_released(t, gram, cross)``,
        ``current_estimate()`` and ``estimate_version`` — defaults to a
        :class:`~repro.core.incremental_regression.PrivIncReg1` (or the
        unbounded variant when ``horizon`` is ``None``; or a
        :class:`~repro.core.projected_regression.PrivIncReg2` sharing the
        front's ``Φ`` under ``backend="projected"``/``"sketch"``) whose
        own trees never ingest; it contributes only the post-tree
        post-processing.
    beta, fidelity, iteration_cap:
        Forwarded to the default solver.
    rng:
        Seed or Generator.  Under ``backend="projected"`` (and
        ``"sketch"``) the shared ``Φ`` is drawn from it first (exactly
        the plain ``PrivIncReg2`` consumption); then shard ``i``'s
        (cross, gram) mechanisms use
        children ``2i``/``2i+1`` of ``rng.spawn(2K)`` — for ``K=1`` this
        is exactly the plain estimators' two-child spawn, which is what
        makes the ``K=1`` server bit-identical (moment backend) or
        tree-release-bit-identical (projected backend) to the plain
        batched path.
    """

    def __init__(
        self,
        constraint: ConvexSet,
        params: PrivacyParams,
        shards: int = 2,
        *,
        horizon: int | None = None,
        refresh_every: int | None = None,
        ingest: str = "exact",
        mechanism: str = "tree",
        decay: float | None = None,
        window: int | float | None = None,
        composition: str = "parallel",
        router: "str | callable" = "round_robin",
        mode: str = "sync",
        transport: str = "thread",
        request_timeout: float | None = None,
        addresses=None,
        heartbeat_every: float | None = None,
        restart_policy: str = "never",
        shard_horizon: int | None = None,
        backend: str = "moment",
        x_domain: PointSet | None = None,
        projection=None,
        projected_dim: int | None = None,
        gamma: float | None = None,
        sparsity_factor: int | None = None,
        solver=None,
        beta: float = 0.05,
        fidelity: str = "fast",
        iteration_cap: int = 400,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if ingest not in ("exact", "fast"):
            raise ValidationError(f"ingest must be 'exact' or 'fast', got {ingest!r}")
        if backend not in ("moment", "projected", "sketch"):
            raise ValidationError(
                f"backend must be 'moment', 'projected' or 'sketch', "
                f"got {backend!r}"
            )
        if backend == "moment" and not (
            x_domain is None
            and projection is None
            and projected_dim is None
            and gamma is None
        ):
            raise ValidationError(
                "x_domain/projection/projected_dim/gamma only apply to "
                "backend='projected' or 'sketch'"
            )
        if sparsity_factor is not None:
            if backend != "sketch":
                raise ValidationError(
                    "sparsity_factor only applies to backend='sketch' (it "
                    "sizes the sparse-JL Φ the sketch backend draws)"
                )
            sparsity_factor = check_int(
                "sparsity_factor", sparsity_factor, minimum=1
            )
        if backend in ("projected", "sketch") and mechanism != "tree":
            raise ValidationError(
                f"backend={backend!r} needs tree shards (there is no "
                "horizon-free projected solver; Algorithm 3 assumes a known T)"
            )
        if mechanism not in ("tree", "hybrid"):
            raise ValidationError(
                f"mechanism must be 'tree' or 'hybrid', got {mechanism!r}"
            )
        if mode not in ("sync", "async", "manual"):
            raise ValidationError(
                f"mode must be 'sync', 'async', or 'manual', got {mode!r}"
            )
        if transport not in ("thread", "process", "tcp"):
            raise ValidationError(
                f"transport must be 'thread', 'process', or 'tcp', got "
                f"{transport!r}"
            )
        if request_timeout is not None:
            if transport == "thread":
                raise ValidationError(
                    "request_timeout needs a wire to deadline "
                    "(transport='process' or 'tcp'); in-process shard "
                    "calls are plain method calls"
                )
            if not request_timeout > 0:
                raise ValidationError(
                    f"request_timeout must be positive (seconds) or None, "
                    f"got {request_timeout!r}"
                )
        if addresses is not None and transport != "tcp":
            raise ValidationError(
                "addresses only applies to transport='tcp'"
            )
        if restart_policy not in ("never", "auto"):
            raise ValidationError(
                f"restart_policy must be 'never' or 'auto', got "
                f"{restart_policy!r}"
            )
        if heartbeat_every is not None and not heartbeat_every > 0:
            raise ValidationError(
                f"heartbeat_every must be positive (seconds) or None, got "
                f"{heartbeat_every!r}"
            )
        if restart_policy == "auto" and heartbeat_every is None:
            raise ValidationError(
                "restart_policy='auto' is driven by the health-check loop; "
                "set heartbeat_every"
            )
        if ingest == "fast" and mechanism != "tree":
            raise ValidationError(
                "ingest='fast' needs tree shards (advance_sum is a "
                "TreeMechanism serving path)"
            )
        decay, window = check_release_knobs(decay, window)
        if backend == "sketch" and decay is not None:
            raise ValidationError(
                "decay is not supported with backend='sketch': per-block "
                "sketch noise keeps no node subtotals to fade; use "
                "backend='moment' or 'projected' for decayed streams"
            )
        if backend == "sketch" and window is not None:
            raise ValidationError(
                "window is not supported with backend='sketch': per-block "
                "sketch noise cannot expire elements; use window= with the "
                "tree backends"
            )
        if window is not None and math.isinf(window) and mechanism != "tree":
            raise ValidationError(
                "window=inf is the degenerate never-expiring window (one "
                "tree over the full stream): it needs mechanism='tree' and "
                "a horizon"
            )
        if window is not None and not math.isinf(window) and ingest == "fast":
            raise ValidationError(
                "ingest='fast' cannot serve a finite window: the "
                "pre-reduced block totals advance_sum consumes cannot be "
                "split at chunk expiry boundaries; use ingest='exact'"
            )
        if mechanism == "tree" and horizon is None:
            raise ValidationError(
                "mechanism='tree' needs a horizon (use mechanism='hybrid' "
                "for horizon-free serving)"
            )
        if router != "round_robin" and not callable(router):
            raise ValidationError(
                f"router must be 'round_robin' or a callable, got {router!r}"
            )
        if callable(router) and composition == "parallel":
            # A data-dependent router breaks the disjointness argument the
            # full-budget parallel mode relies on: a neighboring stream can
            # re-route a block, changing TWO shards' transcripts.  The
            # library cannot verify a callable is data-independent, so it
            # refuses the unsound combination rather than under-reporting
            # the privacy loss.
            raise ValidationError(
                "a callable router cannot be certified disjoint under "
                "neighboring streams; use composition='basic' (per-shard "
                "(ε/K, δ/K)) with custom routing"
            )
        self.constraint = constraint
        self.params = params
        self.dim = constraint.dim
        self.shards_count = check_int("shards", shards, minimum=1)
        self.horizon = (
            None if horizon is None else check_int("horizon", horizon, minimum=1)
        )
        self.refresh_every = (
            None
            if refresh_every is None
            else check_int("refresh_every", refresh_every, minimum=1)
        )
        self.ingest = ingest
        self.mechanism = mechanism
        self.decay = decay
        self.window = window
        self.composition = composition
        self.mode = mode
        self.transport = transport
        self.request_timeout = request_timeout
        self.heartbeat_every = heartbeat_every
        self.restart_policy = restart_policy
        # transport="tcp" with no addresses: boot a private loopback
        # listener owned (and closed) by this stream — single-host tcp
        # with zero setup.  Explicit addresses mean the listeners are
        # someone else's lifecycle (other hosts); we only connect.
        self._listener: ShardHostListener | None = None
        self._owns_listener = False
        if transport == "tcp":
            if addresses is None:
                self._listener = ShardHostListener()
                self._owns_listener = True
                addresses = [self._listener.address]
            self.addresses = tuple(
                ShardAddress.coerce(address) for address in addresses
            )
        else:
            self.addresses = None
        self._router = router
        self._rng = check_rng(rng)
        self._fast = ingest == "fast"

        if shard_horizon is not None and self.mechanism != "tree":
            raise ValidationError(
                "shard_horizon only applies to mechanism='tree' (hybrid "
                "shards are horizon-free)"
            )
        if shard_horizon is None:
            shard_horizon = self.horizon
        else:
            shard_horizon = check_int("shard_horizon", shard_horizon, minimum=1)
        self.shard_horizon = shard_horizon if self.mechanism == "tree" else None

        self.backend = backend
        self.x_domain = x_domain
        self._solver_gamma = gamma
        if backend in ("projected", "sketch"):
            if solver is None and x_domain is None:
                raise ValidationError(
                    f"backend={backend!r} needs x_domain for the default "
                    "PrivIncReg2 solver (or pass an explicit solver)"
                )
            if projection is not None:
                if sparsity_factor is not None:
                    raise ValidationError(
                        "sparsity_factor sizes the internally drawn sparse "
                        "Φ; it cannot rewire a pre-built projection — pass "
                        "SparseProjection(..., sparsity_factor=s) directly"
                    )
                if projection.original_dim != self.dim:
                    raise ValidationError(
                        f"projection maps from dim {projection.original_dim}, "
                        f"expected {self.dim}"
                    )
                self.projection = projection
            else:
                if projected_dim is None:
                    if x_domain is None:
                        raise ValidationError(
                            f"backend={backend!r} needs x_domain (or an "
                            "explicit projection/projected_dim) to size Φ"
                        )
                    _, _, projected_dim = projected_sizing(
                        self.horizon, constraint, x_domain, beta=beta, gamma=gamma
                    )
                else:
                    projected_dim = check_int(
                        "projected_dim", projected_dim, minimum=1
                    )
                # Φ is drawn from the front's generator BEFORE the shard
                # spawn — the same consumption order as a plain PrivIncReg2,
                # which keeps the K=1 shard children identical to the plain
                # estimator's two trees.
                if backend == "sketch":
                    self.projection = SparseProjection(
                        self.dim,
                        projected_dim,
                        sparsity_factor=(
                            3 if sparsity_factor is None else sparsity_factor
                        ),
                        rng=self._rng,
                    )
                else:
                    self.projection = GaussianProjection(
                        self.dim, projected_dim, rng=self._rng
                    )
            self.projected_dim = self.projection.projected_dim
        else:
            self.projection = None
            self.projected_dim = None
        self.sparsity_factor = getattr(self.projection, "sparsity_factor", None)

        budgets = shard_budgets(params, self.shards_count, composition)
        children = self._rng.spawn(2 * self.shards_count)
        shards: list[MomentShard] = []
        try:
            for i in range(self.shards_count):
                shards.append(
                    self._make_shard(i, budgets[i], children[2 * i], children[2 * i + 1])
                )
        except BaseException:
            # A failed shard (e.g. a process worker whose spawn payload
            # would not pickle) must not leak the workers already booted,
            # nor the self-hosted tcp listener.
            for shard in shards:
                shard.shutdown()
            if self._owns_listener:
                self._listener.close()
            raise
        self._shards = shards

        # The logical budget ledger.  Under parallel composition the whole
        # sharded release costs what ONE shard costs (disjoint sub-streams);
        # under basic composition the per-shard charges sum back to the
        # total.  Either way the ledger stays within `params`.
        self.accountant = PrivacyAccountant(params, mode="basic")
        if composition == "parallel":
            half = params.halve()
            self.accountant.charge("shards:cross-moments(parallel)", half)
            self.accountant.charge("shards:gram-moments(parallel)", half)
        else:
            for shard in self._shards:
                half = shard.budget.halve()
                self.accountant.charge(f"shard{shard.index}:cross-moments", half)
                self.accountant.charge(f"shard{shard.index}:gram-moments", half)

        if solver is None:
            solver = self._default_solver(beta, fidelity, iteration_cap)
        self.solver = solver

        # The hub is the single publish path (cache swap + waiter wakeup +
        # subscriber fan-out); `self.cache` stays exposed for read-only
        # inspection and the conformance suites.
        self._hub = EstimateHub()
        self.cache = self._hub.cache
        self._lock = threading.RLock()
        self._queue: queue.Queue = queue.Queue()
        self._processed = 0  # logical t: points fully ingested by shards
        self._enqueued = 0  # points accepted at the API boundary
        self._blocks_routed = 0
        self._blocks_refunded = 0
        self._next_shard = 0
        self._last_refresh_t = 0
        self.lost_steps = 0
        self._error: BaseException | None = None
        self._closed = False
        # close() must be serialized on its own lock: it blocks on the
        # queue drain, and the ingestion lock is exactly what the worker
        # needs to finish that drain.
        self._close_lock = threading.Lock()
        self._group_executor: ThreadPoolExecutor | None = None
        # Publish the solver's initial parameter so reads never block.
        self._hub.publish(
            self.solver.current_estimate(),
            self.solver.estimate_version,
            timestep=0,
            covered_steps=0,
        )
        self._worker: threading.Thread | None = None
        if mode == "async":
            self._worker = threading.Thread(
                target=self._worker_loop, name="sharded-stream-worker", daemon=True
            )
            self._worker.start()
        # The health-check loop: detects dead/stuck shards between RPCs.
        # Started last so a constructor failure never leaks it.
        self._heartbeat = {
            "pings": 0,
            "deaths_detected": 0,
            "restarts": 0,
            "errors": 0,
        }
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        if heartbeat_every is not None:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="sharded-stream-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    def _make_shard(
        self,
        index: int,
        budget: PrivacyParams,
        cross_rng: np.random.Generator,
        gram_rng: np.random.Generator,
    ) -> MomentShard:
        """Construct one shard worker for the configured backend + transport.

        The remote transports pack the identical configuration — same
        rng children, same budget, same shared ``Φ`` — into a picklable
        :class:`~repro.streaming.transport.ShardSpec` and boot a proxy
        around it (:class:`~repro.streaming.transport.ProcessShardWorker`
        over a pipe, or
        :class:`~repro.streaming.netserve.TcpShardWorker` against
        ``addresses[index % len(addresses)]``), so every transport builds
        byte-for-byte the same mechanisms and consumes randomness
        identically.
        """
        if self.transport in ("process", "tcp"):
            spec = ShardSpec(
                index=index,
                dim=self.dim,
                budget=budget,
                cross_rng=cross_rng,
                gram_rng=gram_rng,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
                backend=self.backend,
                projection=self.projection,
                decay=self.decay,
                window=self.window,
            )
            if self.transport == "tcp":
                return TcpShardWorker(
                    spec,
                    self.addresses[index % len(self.addresses)],
                    request_timeout=self.request_timeout,
                )
            return ProcessShardWorker(
                spec, request_timeout=self.request_timeout
            )
        if self.backend in ("projected", "sketch"):
            shard_cls = (
                SketchShard if self.backend == "sketch" else ProjectedMomentShard
            )
            return shard_cls(
                index=index,
                dim=self.dim,
                budget=budget,
                cross_rng=cross_rng,
                gram_rng=gram_rng,
                projection=self.projection,
                mechanism=self.mechanism,
                shard_horizon=self.shard_horizon,
                decay=self.decay,
                window=self.window,
            )
        return MomentShard(
            index=index,
            dim=self.dim,
            budget=budget,
            cross_rng=cross_rng,
            gram_rng=gram_rng,
            mechanism=self.mechanism,
            shard_horizon=self.shard_horizon,
            decay=self.decay,
            window=self.window,
        )

    def _group_pool(self) -> ThreadPoolExecutor:
        """The persistent group-ingestion thread pool (lazily created).

        One pool per front, reused across :meth:`observe_group` calls, so
        per-group overhead is task dispatch only — creating threads per
        group would dominate small blocks.  Sized at ``K``: there is never
        more than one task per shard queue in flight.
        """
        if self._group_executor is None:
            self._group_executor = ThreadPoolExecutor(
                max_workers=self.shards_count, thread_name_prefix="shard-group"
            )
        return self._group_executor

    def _default_solver(self, beta: float, fidelity: str, iteration_cap: int):
        solver_rng = self._rng.spawn(1)[0]
        if self.backend in ("projected", "sketch"):
            # Shares the front's Φ, so refresh_from_released receives merged
            # moments living in the solver's own projected space; its two
            # internal trees never ingest (lazy allocation keeps them O(m)).
            return PrivIncReg2(
                horizon=self.horizon,
                constraint=self.constraint,
                x_domain=self.x_domain,
                params=self.params,
                beta=beta,
                gamma=self._solver_gamma,
                fidelity=fidelity,
                iteration_cap=iteration_cap,
                projection=self.projection,
                rng=solver_rng,
            )
        if self.horizon is not None:
            return PrivIncReg1(
                horizon=self.horizon,
                constraint=self.constraint,
                params=self.params,
                beta=beta,
                fidelity=fidelity,
                iteration_cap=iteration_cap,
                rng=solver_rng,
            )
        return UnboundedPrivIncReg(
            self.constraint,
            self.params,
            beta=beta,
            iteration_cap=iteration_cap,
            rng=solver_rng,
        )

    # ------------------------------------------------------------------
    # Ingestion API
    # ------------------------------------------------------------------

    def observe(self, x: np.ndarray, y: float) -> np.ndarray:
        """Ingest one point (a block of one); return the cached estimate.

        In async mode this enqueues and returns immediately — the returned
        estimate is the cached one, which may not reflect this point until
        the worker's next refresh completes.
        """
        x = check_vector("x", x, dim=self.dim)
        return self.observe_batch(x[None, :], np.asarray([float(y)]))

    def observe_batch(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Ingest a block of consecutive points; return the cached estimate.

        The block is validated and accepted (or rejected) atomically at
        the API boundary, then routed whole to one shard.  ``mode="sync"``
        processes inline; otherwise the block is enqueued FIFO and this
        returns without touching the shard trees or the solver.
        """
        self._raise_if_unusable()
        xs, ys = check_xy_block(xs, ys, dim=self.dim)
        check_unit_xy_domain("ShardedStream", xs, ys)
        k = xs.shape[0]
        # Reserve capacity under the lock: concurrent producers must not
        # both pass the horizon check (the noise calibration is for T
        # elements, so overshooting it would be a privacy violation, not a
        # bookkeeping one).
        with self._lock:
            if self.horizon is not None and self._enqueued + k > self.horizon:
                raise StreamExhaustedError(
                    f"ShardedStream configured for horizon {self.horizon} "
                    f"received a block of {k} points at logical step "
                    f"{self._enqueued}"
                )
            self._enqueued += k
        if self.mode == "sync":
            self._process_block(xs, ys)
        else:
            # Enqueue private copies: check_xy_block may alias the caller's
            # buffers, and a producer that refills its block buffer before
            # the worker drains would otherwise feed the trees data that
            # was never validated (breaking the unit-domain sensitivity
            # calibration) and diverge from the synchronous path.
            self._queue.put((np.array(xs), np.array(ys)))
        return self.current_estimate()

    def observe_group(
        self,
        blocks,
        workers: int | None = None,
    ) -> np.ndarray:
        """Ingest a *group* of blocks, thread-parallel across shards.

        Each block of the group is routed exactly as ``len(blocks)``
        successive :meth:`observe_batch` calls would route it (round-robin
        over live shards, in group order), but the per-shard work runs
        concurrently on a thread pool: shards are fully independent — own
        mechanisms, own generators, a read-only shared ``Φ`` — and the
        heavy lifting (the BLAS moment products of the ``fast`` tier, the
        Gaussian draws) releases the GIL, so a group of ``K`` blocks
        ingests in roughly the time of the largest single block.  One
        merge + solve runs after the whole group (the refresh cadence
        still honors ``refresh_every``), so the served estimate is exactly
        the sequential route's post-group state; per-shard tree releases
        are bit-identical to the sequential route because each shard
        consumes its blocks in the same order either way.

        Only ``mode="sync"`` supports groups (async/manual callers already
        have a queue to overlap ingestion with).

        Parameters
        ----------
        blocks:
            Sequence of ``(xs, ys)`` block pairs (each ``(k_i, d)`` /
            ``(k_i,)``).  The whole group is validated and reserved
            against the horizon atomically before anything ingests.
        workers:
            Thread-pool width; defaults to one thread per shard that
            received work.  ``workers=1`` degrades to inline sequential
            ingestion (useful as a control in benchmarks).

        Raises
        ------
        GroupIngestionError
            If any shard fails mid-group — a per-shard capacity overrun
            (custom ``shard_horizon``) or, under ``transport="process"``,
            a worker process dying mid-group: the committed blocks stay
            committed, the failed blocks' horizon reservation is refunded
            (a dead worker's previously acknowledged mass goes to
            ``lost_steps``), and ``failures`` reports which group indices
            were lost.
        """
        self._raise_if_unusable()
        if self.mode != "sync":
            raise ServingError(
                "observe_group requires mode='sync' (async/manual modes "
                "already pipeline through the ingestion queue)"
            )
        blocks = list(blocks)
        if not blocks:
            raise ValidationError("block group must contain at least one block")
        if workers is not None:
            workers = check_int("workers", workers, minimum=1)
        validated = []
        for xs, ys in blocks:
            xs, ys = check_xy_block(xs, ys, dim=self.dim)
            check_unit_xy_domain("ShardedStream", xs, ys)
            validated.append((xs, ys))
        total = sum(len(ys) for _, ys in validated)
        with self._lock:
            if self.horizon is not None and self._enqueued + total > self.horizon:
                raise StreamExhaustedError(
                    f"ShardedStream configured for horizon {self.horizon} "
                    f"received a group of {total} points at logical step "
                    f"{self._enqueued}"
                )
            self._enqueued += total
            # On failure _ingest_group has already refunded the failed
            # blocks' reservation (a pre-ingestion routing failure refunds
            # everything).
            self._ingest_group(validated, workers)
            if self._should_refresh():
                self._refresh()
        return self.current_estimate()

    def _ingest_group(self, blocks, workers: int | None) -> None:
        """Route a validated group, then drain per-shard queues in parallel.

        Routing happens up front (it is order-sensitive shared state);
        after that each shard's assigned blocks form an independent work
        queue consumed by one task, so no two threads ever touch the same
        mechanism.  Failures are per-block atomic (the trees validate and
        check capacity before consuming), per-shard fail-stop (a shard
        stops at its first failed block), and fully reported.
        """
        routed = 0
        try:
            assignments: dict[int, list[tuple[int, MomentShard, np.ndarray, np.ndarray]]] = {}
            for group_index, (xs, ys) in enumerate(blocks):
                shard = self._route(xs, ys)
                self._blocks_routed += 1
                routed += 1
                assignments.setdefault(shard.index, []).append(
                    (group_index, shard, xs, ys)
                )
        except BaseException:
            # A routing failure refunds the whole group: nothing ingested,
            # so every block counted so far is a refund, not a commit.
            self._blocks_refunded += routed
            self._enqueued -= sum(len(ys) for _, ys in blocks)
            raise

        ingested = 0
        failures: list[tuple[int, BaseException]] = []
        failure_lock = threading.Lock()

        def drain_queue(tasks) -> int:
            """Ingest ONE shard's queue in order; fail-stop that shard only.

            A failed block aborts the rest of *this shard's* queue (its
            sub-stream order would otherwise gap) and reports every
            unattempted block of the queue as failed; other shards'
            queues are unaffected.
            """
            done = 0
            for position, (group_index, shard, xs, ys) in enumerate(tasks):
                try:
                    shard.ingest(xs, ys, self._fast)
                except BaseException as exc:
                    with failure_lock:
                        # A crashed process worker's acknowledged mass is
                        # lost (no-op for ordinary ingest failures — the
                        # shard is still alive).
                        self._note_shard_death(shard)
                        failures.append((group_index, exc))
                        failures.extend(
                            (later_index, exc)
                            for later_index, _, _, _ in tasks[position + 1 :]
                        )
                    return done
                done += len(ys)
            return done

        def drain_bucket(bucket) -> int:
            return sum(drain_queue(tasks) for tasks in bucket)

        queues = list(assignments.values())
        width = min(workers or len(queues), len(queues))
        if width == 1:
            ingested = drain_bucket(queues)
        else:
            # Bucket whole per-shard queues onto `width` threads of the
            # persistent pool.  Buckets hold queues (never flattened), so
            # per-shard order — and with it tree-release bit-identity — is
            # preserved, and one shard's failure stops only its own queue.
            buckets: list[list] = [[] for _ in range(width)]
            for i, tasks in enumerate(queues):
                buckets[i % width].append(tasks)
            ingested = sum(self._group_pool().map(drain_bucket, buckets))
        self._processed += ingested
        if failures:
            failures.sort(key=lambda pair: pair[0])
            lost = sum(
                len(blocks[group_index][1]) for group_index, _ in failures
            )
            self._enqueued -= lost
            # Every failed block — the one that raised and the unattempted
            # fail-stop casualties behind it — was refunded above; without
            # this the routing stats would overcount commits on partial
            # failure (blocks_routed − blocks_refunded == blocks committed).
            self._blocks_refunded += len(failures)
            raise GroupIngestionError(
                f"{len(failures)} of {len(blocks)} group blocks failed to "
                f"ingest ({lost} points refunded); first error: "
                f"{failures[0][1]}",
                failures=failures,
            ) from failures[0][1]

    def flush(self) -> ServedEstimate:
        """Drain pending ingestion and solve through everything processed.

        Blocks until every enqueued block has been processed (async mode
        waits on the worker; manual mode pumps inline), then — if any mass
        arrived since the last refresh — runs a final merge + solve so the
        returned (and cached) estimate covers the full processed stream.
        """
        self._raise_if_unusable()
        if self.mode == "manual":
            self.pump()
        elif self.mode == "async":
            self._join_queue()
        self._raise_if_unusable()
        with self._lock:
            if self._processed > self._last_refresh_t:
                self._refresh()
        return self.current_served()

    def _join_queue(self) -> None:
        """``Queue.join`` with a worker-liveness probe (bounded waits).

        A bare ``join()`` parks on ``task_done`` calls that can never come
        if the async worker thread died between ``get()`` and
        ``task_done()`` — the flush would hang forever.  Waiting in
        bounded slices on the queue's ``all_tasks_done`` condition and
        probing the worker's ``is_alive()`` between them turns that hang
        into a typed :class:`~repro.exceptions.ServingError`; the live
        path is unchanged (the ``task_done`` notify wakes the wait early).
        """
        q = self._queue
        with q.all_tasks_done:
            while q.unfinished_tasks:
                worker = self._worker
                if worker is None or not worker.is_alive():
                    raise ServingError(
                        f"async ingestion worker is dead with "
                        f"{q.unfinished_tasks} queued block(s) unprocessed; "
                        f"the queue can never drain, so the stream cannot "
                        f"be flushed"
                    )
                q.all_tasks_done.wait(timeout=0.05)

    def pump(self, max_blocks: int | None = None) -> int:
        """Process up to ``max_blocks`` queued blocks inline (manual mode).

        Returns the number of blocks processed.  The test suite uses this
        to enumerate queue interleavings deterministically.
        """
        if self.mode != "manual":
            raise ServingError("pump() is only available in mode='manual'")
        self._raise_if_unusable()
        processed = 0
        while max_blocks is None or processed < max_blocks:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            self._process_block(*item)
            processed += 1
        return processed

    def close(self) -> None:
        """Flush, stop every worker, and refuse further ingestion.

        Workers are reclaimed even when the final flush raises (e.g. a
        poisoned server): shutdown must never leak the async thread, the
        group pool, or — under ``transport="process"`` — the shard worker
        processes.

        Idempotent under concurrency: all of close runs under a dedicated
        lock (a bare ``_closed`` check-then-act would let two concurrent
        closers both run the teardown — double ``_CLOSE`` sentinels, a
        ``join`` on a reset ``_worker``, double executor shutdown), so a
        second caller blocks until the first finishes, then returns.
        """
        with self._close_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._closed:
            return
        # Stop the health-check loop first: an auto-restart racing the
        # teardown would re-boot workers close is about to reap.
        self._heartbeat_stop.set()
        try:
            if self._error is None:
                self.flush()
        finally:
            self._closed = True
            if self._heartbeat_thread is not None:
                # Bounded: the loop might be mid-ping on a wedged worker
                # (daemon thread — safe to abandon past the deadline).
                self._heartbeat_thread.join(timeout=5.0)
                self._heartbeat_thread = None
            if self._worker is not None:
                self._queue.put(_CLOSE)
                self._worker.join()
                self._worker = None
            if self._group_executor is not None:
                self._group_executor.shutdown(wait=True)
                self._group_executor = None
            for shard in self._shards:
                shard.shutdown()
            if self._owns_listener:
                self._listener.close()
            # Release parked wait_for_version callers (no further publish
            # can ever satisfy them); served entries stay readable.
            self._hub.close()

    def __enter__(self) -> "ShardedStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def current_estimate(self) -> np.ndarray:
        """The cached parameter — one lock-free read-only pointer read.

        The anonymous shared read: thread-safe from any number of
        readers, touches no shared mutable state, keeps no statistics.
        Readers that want per-reader stats, the snapshot fast path, or
        blocking waits should hold a :meth:`reader` handle instead.
        """
        return self.cache.get().theta

    def current_served(self) -> ServedEstimate:
        """The cached estimate with version/coverage metadata (lock-free)."""
        return self.cache.get()

    def reader(self) -> ReaderHandle:
        """A per-reader fan-out handle (one per reader thread).

        Handles hold a private snapshot with a version fast-path check —
        between refreshes a read returns the reader's own reference
        without touching shared state — and keep per-reader read counts
        that :meth:`read_stats` aggregates on demand.  Usable as a
        context manager; ``close()`` (or stream close) retires it.
        """
        return self._hub.reader()

    def subscribe(self, callback) -> Subscription:
        """Fire ``callback(entry)`` on every publish (pub-sub invalidation).

        Callbacks run on the publishing thread after the new entry is
        visible to readers; exceptions are isolated per subscription
        (counted on ``Subscription.errors``, never propagated to the
        refresh path).  Returns the :class:`Subscription`; call its
        ``unsubscribe()`` to stop.
        """
        return self._hub.subscribe(callback)

    def wait_for_version(
        self, version: int, timeout: float | None = None
    ) -> ServedEstimate:
        """Block until a solve with ``version`` (or newer) is published.

        The poller-to-waiter conversion: built on the cache's condition
        variable, woken by the publish that satisfies it (or by
        :meth:`close`, with a :class:`~repro.exceptions.ServingError`).
        Raises :class:`~repro.exceptions.WaitTimeoutError` on timeout.
        """
        return self._hub.wait_for_version(version, timeout=timeout)

    def read_stats(self) -> ReadStats:
        """One consistent snapshot of the read fan-out (aggregated on demand)."""
        return self._hub.read_stats()

    @property
    def estimate_version(self) -> int:
        """Number of completed solves published to the cache (lock-free)."""
        return self.cache.version

    @property
    def steps_ingested(self) -> int:
        """Points fully processed into shard mechanisms (logical ``t``)."""
        return self._processed

    @property
    def steps_enqueued(self) -> int:
        """Points accepted at the API boundary (≥ ``steps_ingested``)."""
        return self._enqueued

    @property
    def blocks_routed(self) -> int:
        """Blocks assigned a shard so far (monotone — feeds the callable
        router's ``block_index``, so refunds never reuse an index)."""
        return self._blocks_routed

    @property
    def blocks_refunded(self) -> int:
        """Routed blocks whose ingestion failed or was never attempted
        (fail-stop casualties); their reservations were refunded, so
        ``blocks_routed − blocks_refunded`` counts committed blocks."""
        return self._blocks_refunded

    def shard_states(self) -> list[dict]:
        """Per-shard liveness and load snapshot (diagnostics)."""
        with self._lock:
            return [
                {"index": s.index, "alive": s.alive, "steps": s.steps}
                for s in self._shards
            ]

    def heartbeat_stats(self) -> dict:
        """Counters from the health-check loop (one consistent snapshot).

        ``pings`` (successful probes), ``deaths_detected`` (probes that
        found a dead/stuck worker and booked its loss),
        ``restarts`` (``restart_policy="auto"`` recoveries), ``errors``
        (probe or restart failures that were neither — e.g. a refused
        restart under basic composition).  All zero when
        ``heartbeat_every`` is unset.
        """
        with self._lock:
            return dict(self._heartbeat)

    def _heartbeat_loop(self) -> None:
        """The health-check daemon: ping every live shard, book deaths.

        Shares the ingestion lock, so probes are serialized with real
        traffic — a ping can never interleave mid-RPC on a worker's wire.
        With a ``request_timeout`` a *stuck* worker fails its ping within
        the deadline; without one the probe only catches *crashed*
        workers (pipe/socket EOF fails fast).  Under
        ``restart_policy="auto"`` any dead shard found is restarted on
        the spot with :meth:`restart_shard` semantics (reentrant — the
        ingestion lock is an RLock).
        """
        while not self._heartbeat_stop.wait(self.heartbeat_every):
            with self._lock:
                if self._closed:
                    return
                for shard in self._shards:
                    if not shard.alive:
                        continue
                    probe = getattr(shard, "ping", None)
                    try:
                        if probe is not None:
                            probe()
                        self._heartbeat["pings"] += 1
                    except ShardUnavailableError:
                        self._heartbeat["deaths_detected"] += 1
                        self._note_shard_death(shard)
                    except Exception:  # pragma: no cover - defensive
                        self._heartbeat["errors"] += 1
                if self.restart_policy == "auto":
                    for index in range(self.shards_count):
                        if self._shards[index].alive:
                            continue
                        try:
                            self.restart_shard(index)
                            self._heartbeat["restarts"] += 1
                        except Exception:
                            # e.g. budget refusal under basic composition:
                            # the shard stays dead, merges stay partial.
                            self._heartbeat["errors"] += 1

    def memory_floats(self) -> int:
        """Floats held by the shard mechanisms (plus the shared ``Φ``).

        ``K · O(moment_dim² log T)`` — under ``backend="projected"`` that
        is ``K·O(m² log T) + m·d`` (one shared projection, counted once),
        versus the moment backend's ``K·O(d² log T)``; the quantity
        ``bench_projected_serving.py`` records.
        """
        with self._lock:
            total = 0
            for shard in self._shards:
                try:
                    total += shard.memory_floats()
                except ShardUnavailableError:
                    # Crash detected by the diagnostic itself: a dead
                    # worker holds nothing, and its mass is booked lost.
                    self._note_shard_death(shard)
        if self.projection is not None:
            total += int(self.projection.matrix.size)
        return total

    def merged_moments(self) -> tuple[MergedRelease, MergedRelease]:
        """The merged (cross, gram) released moments right now.

        Post-processing of already-released sums — free to call, used by
        the conformance suite to compare against per-shard replays.
        """
        with self._lock:
            return self._merge()

    # ------------------------------------------------------------------
    # Shard lifecycle (fault injection / recovery)
    # ------------------------------------------------------------------

    def kill_shard(self, index: int) -> None:
        """Simulate a shard worker dying: its mechanisms (and mass) are lost.

        Under ``transport="process"`` this SIGKILLs the worker process —
        a real crash, not a graceful stop.  Idempotent.  Subsequent merges
        degrade to partial coverage — see the module docstring for the
        contract.
        """
        index = check_int("index", index, minimum=0)
        if index >= self.shards_count:
            raise ValidationError(
                f"shard index {index} out of range [0, {self.shards_count})"
            )
        with self._lock:
            shard = self._shards[index]
            shard.kill()
            self._note_shard_death(shard)

    def restart_shard(self, index: int) -> None:
        """Bring a dead shard back with fresh mechanisms over a fresh sub-stream.

        Under ``composition="parallel"`` the restarted shard's new
        mechanisms cover only points routed after the restart — still a
        partition of the logical stream, so the parallel-composition
        privacy argument is unchanged and the restart is free.  Under
        ``composition="basic"`` disjointness is exactly what could not be
        certified, so the replacement mechanisms' ``(ε/K, δ/K)`` budget is
        charged to the accountant — which raises
        :class:`~repro.exceptions.PrivacyBudgetError` when the ledger has
        no headroom left (the evenly-split default consumes the whole
        budget up front, so such restarts are refused).  The mass the dead
        shard had ingested stays lost (and reported) either way.
        """
        index = check_int("index", index, minimum=0)
        if index >= self.shards_count:
            raise ValidationError(
                f"shard index {index} out of range [0, {self.shards_count})"
            )
        with self._lock:
            old = self._shards[index]
            if old.alive:
                raise ServingError(
                    f"shard {index} is alive; kill_shard() before restarting"
                )
            # The replacement removes the dead worker from every later
            # sweep, so its loss must be booked here if no other path got
            # to it first (e.g. a crash first noticed by a worker-level
            # diagnostic, restarted before any merge ran).
            self._note_shard_death(old)
            if self.composition == "basic":
                # One atomic charge for the replacement pair of trees;
                # PrivacyAccountant.charge rolls itself back on refusal.
                self.accountant.charge(
                    f"shard{index}:moments(restart)", old.budget.halve(), count=2
                )
            cross_rng, gram_rng = self._rng.spawn(2)
            self._shards[index] = self._make_shard(
                index, old.budget, cross_rng, gram_rng
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _raise_if_unusable(self) -> None:
        if self._closed:
            raise ServingError("ShardedStream is closed")
        if self._error is not None:
            raise ServingError(
                f"asynchronous ingestion failed: {self._error}"
            ) from self._error

    def _route(self, xs: np.ndarray, ys: np.ndarray) -> MomentShard:
        """Pick the target shard for the next block (skipping dead shards)."""
        if callable(self._router):
            start = int(self._router(self._blocks_routed, xs, ys)) % self.shards_count
        else:
            start = self._next_shard
            self._next_shard = (self._next_shard + 1) % self.shards_count
        for offset in range(self.shards_count):
            shard = self._shards[(start + offset) % self.shards_count]
            if shard.alive:
                return shard
        raise ShardUnavailableError("every shard is dead; nothing can ingest")

    def _process_block(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Ingest one routed block under the lock, then run any due refresh.

        The single definition of the failure semantics every ingestion
        mode (sync, pump, worker) shares: an *ingest* failure leaves the
        block unconsumed — routing raises before any tree advances, and
        the trees validate and check capacity before consuming anything —
        so the block's horizon reservation is released here and a retry is
        safe.  A *refresh* failure happens after the block is committed to
        the shard trees — its capacity must stay consumed (re-ingesting
        the same points would exceed the noise calibration), and only the
        solve is retried (``flush`` re-runs it because ``_last_refresh_t``
        only advances on success).
        """
        with self._lock:
            try:
                self._ingest_block(xs, ys)
            except BaseException:
                self._enqueued -= len(ys)
                raise
            if self._should_refresh():
                self._refresh()

    def _ingest_block(self, xs: np.ndarray, ys: np.ndarray) -> None:
        shard = self._route(xs, ys)
        self._blocks_routed += 1
        try:
            shard.ingest(xs, ys, self._fast)
        except ShardUnavailableError:
            # A process worker crashed under the block (thread shards never
            # raise this from ingest): the shard's previously acknowledged
            # mass is lost; the block itself was not acknowledged and is
            # refunded by the caller, so a retry routes to a live shard.
            self._note_shard_death(shard)
            self._blocks_refunded += 1
            raise
        except BaseException:
            # Any other ingest failure (capacity, validation) also leaves
            # the block unconsumed and refundable — the routing stat must
            # not count it as committed.
            self._blocks_refunded += 1
            raise
        self._processed += len(ys)

    def _should_refresh(self) -> bool:
        if self.refresh_every is None:
            return True
        if self.horizon is not None and self._processed >= self.horizon:
            return True
        return (
            self._processed // self.refresh_every
            > self._last_refresh_t // self.refresh_every
        )

    def _note_shard_death(self, shard) -> None:
        """Credit a dead worker's acknowledged mass to ``lost_steps`` — once.

        The single definition of the loss-accounting rule, so every path
        that can *observe* a death (commanded kill, crash detected during
        ingest, during a merge, or by a diagnostic) funnels through the
        same once-only ledger update and no detection order can drop or
        double-count mass.  No-op while the shard is alive or after its
        loss is already booked.
        """
        if not shard.alive and not shard.lost_accounted:
            shard.lost_accounted = True
            self.lost_steps += shard.steps

    def _released_handles(self, shard):
        """One shard's (cross, gram) merge handles, or (None, None) if dead.

        A process worker found dead *here* (crashed since its last
        acknowledgement) is folded into the partial-coverage path on the
        spot: its mass is accounted as lost and the merge proceeds over
        the survivors, instead of failing the refresh.  Deaths detected
        earlier by paths that could not account them (e.g. a diagnostic
        RPC) are swept up here too — every served estimate is preceded by
        a merge, so the books are settled before coverage is reported.
        """
        if not shard.alive:
            self._note_shard_death(shard)
            return None, None
        try:
            return shard.released()
        except ShardUnavailableError:
            self._note_shard_death(shard)
            return None, None

    def _merge(self) -> tuple[MergedRelease, MergedRelease]:
        pairs = [self._released_handles(s) for s in self._shards]
        cross = merge_released([c for c, _ in pairs], strict=False)
        gram = merge_released([g for _, g in pairs], strict=False)
        return cross, gram

    def _refresh(self) -> None:
        """Merge the shard releases and run one solve; publish to the cache.

        ``_last_refresh_t`` advances only once the refresh completes (or
        there is provably nothing to solve), so a failed solve leaves the
        stream marked stale and the next ``flush``/scheduled refresh
        retries it instead of silently serving an outdated estimate.
        """
        cross, gram = self._merge()
        covered = cross.covered_steps
        if covered == 0:
            # Nothing covered (e.g. every surviving shard is empty): there
            # is no objective to solve; the previous estimate stands.
            self._last_refresh_t = self._processed
            return
        # Decayed / windowed shards cover an *effective weight* different
        # from their raw step count — that weight is the logical sample
        # count the solver must size its Lipschitz constant from.  Plain
        # shards report weight == covered exactly (float vs int compares
        # exact for counts), so the historical integer path — and its
        # bit-identical solves — is preserved.
        weight = cross.covered_weight
        t_solve = weight if weight != covered else covered
        theta = self.solver.refresh_from_released(t_solve, gram.value, cross.value)
        self._hub.publish(
            theta,
            self.solver.estimate_version,
            timestep=self._processed,
            covered_steps=covered,
        )
        self._last_refresh_t = self._processed

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _CLOSE:
                    return
                if self._error is None:
                    try:
                        self._process_block(*item)
                    except BaseException as exc:  # surfaced on the next API call
                        self._error = exc
                else:
                    # A poisoned worker drops the block; refund its horizon
                    # reservation so the books match what was ingested.
                    with self._lock:
                        self._enqueued -= len(item[1])
            finally:
                self._queue.task_done()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStream(shards={self.shards_count}, dim={self.dim}, "
            f"horizon={self.horizon}, ingest={self.ingest!r}, "
            f"mechanism={self.mechanism!r}, mode={self.mode!r}, "
            f"t={self._processed})"
        )
