"""Quickstart: private incremental ridge regression on a synthetic stream.

Runs Algorithm 2 (``PrivIncReg1``) over a short stream of unit-norm
covariates, comparing its per-step excess empirical risk against the exact
(non-private) incremental minimizer and the trivial always-zero mechanism.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    IncrementalRunner,
    L2Ball,
    NonPrivateIncremental,
    PrivacyParams,
    PrivIncReg1,
    StaticOutput,
)
from repro.data import make_dense_stream


def main() -> None:
    horizon, dim = 128, 8
    epsilon, delta = 1.0, 1e-6
    constraint = L2Ball(dim=dim, radius=1.0)

    print(f"Stream: T={horizon}, d={dim};  privacy: (ε={epsilon}, δ={delta})")
    stream = make_dense_stream(horizon, dim, noise_std=0.05, rng=42)
    runner = IncrementalRunner(constraint, eval_every=16)

    mechanism = PrivIncReg1(
        horizon=horizon, constraint=constraint,
        params=PrivacyParams(epsilon, delta), rng=0,
    )
    private_run = runner.run(mechanism, stream)
    exact_run = runner.run(NonPrivateIncremental(constraint), stream)
    static_run = runner.run(StaticOutput(constraint), stream)

    print("\n  t | excess risk: private | non-private | static(θ=0)")
    rows = zip(
        private_run.trace.timesteps,
        private_run.trace.excess,
        exact_run.trace.excess,
        static_run.trace.excess,
    )
    for t, private, exact, static in rows:
        print(f"{t:4d} | {private:20.4f} | {exact:11.6f} | {static:12.4f}")

    print(f"\nTheorem 4.2 reference bound : {mechanism.excess_risk_bound():10.2f}")
    print(f"Worst measured excess risk  : {private_run.trace.max_excess():10.4f}")
    print(f"Mechanism memory (floats)   : {mechanism.memory_floats()}  (O(d² log T))")
    print("\nPrivacy ledger:")
    print(mechanism.accountant.summary())

    recovery = np.linalg.norm(private_run.final_theta - stream.theta_star)
    print(f"\n‖θ_priv − θ*‖ at T: {recovery:.4f}")


if __name__ == "__main__":
    main()
