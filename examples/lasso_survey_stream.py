"""Private incremental Lasso over an ongoing "survey" stream.

The paper's introduction motivates incremental private regression with a
data scientist continuously updating a linear model on user-profile data
from an ongoing survey, where updates must not reveal whether any one
person participated.

This example plays that scenario in the high-dimensional regime the paper's
§5 targets: profiles are sparse (each respondent answers a handful of the
``d`` questions), the model is Lasso-constrained (``C = B₁``), and we run
**Algorithm 3** (``PrivIncReg2``), whose projected dimension is sized by
the Gaussian widths ``w(X) + w(C) = O(√log d)`` rather than ``√d``.

Run with:  python examples/lasso_survey_stream.py
"""

import numpy as np

from repro import (
    IncrementalRunner,
    L1Ball,
    NonPrivateIncremental,
    PrivacyParams,
    PrivIncReg2,
    SparseVectors,
)
from repro.data import make_sparse_stream


def main() -> None:
    horizon = 96
    dim = 300          # survey questions
    answered = 5       # questions answered per respondent
    epsilon, delta = 1.5, 1e-6

    constraint = L1Ball(dim, radius=1.0)
    domain = SparseVectors(dim, sparsity=answered)

    print(f"Survey stream: T={horizon} respondents, d={dim} questions, "
          f"{answered} answered each")
    print(f"w(X) = {domain.gaussian_width():.2f},  w(C) = "
          f"{constraint.gaussian_width():.2f}  (vs √d = {np.sqrt(dim):.1f})")

    stream = make_sparse_stream(horizon, dim, sparsity=answered,
                                noise_std=0.05, rng=7)
    mechanism = PrivIncReg2(
        horizon=horizon,
        constraint=constraint,
        x_domain=domain,
        params=PrivacyParams(epsilon, delta),
        solve_every=8,   # amortize the lifting LP (post-processing only)
        rng=1,
    )
    print(f"Projected dimension m = {mechanism.projected_dim} "
          f"(γ = {mechanism.gamma:.3f}, Gordon-sized — adaptive-input safe)")

    runner = IncrementalRunner(constraint, eval_every=16)
    private_run = runner.run(mechanism, stream)
    exact_run = runner.run(NonPrivateIncremental(constraint), stream)

    print("\n  t | excess: private | non-private |   OPT_t")
    rows = zip(
        private_run.trace.timesteps,
        private_run.trace.excess,
        exact_run.trace.excess,
        private_run.trace.optimal_risk,
    )
    for t, private, exact, opt in rows:
        print(f"{t:4d} | {private:15.4f} | {exact:11.6f} | {opt:8.4f}")

    opt = private_run.trace.final_optimal_risk()
    print(f"\nTheorem 5.7 reference bound : {mechanism.excess_risk_bound(opt):10.2f}")
    print(f"Worst measured excess risk  : {private_run.trace.max_excess():10.4f}")

    # The released model is sparse-ish: report its largest coefficients.
    theta = private_run.final_theta
    top = np.argsort(np.abs(theta))[::-1][:5]
    print("\nTop-5 released coefficients (question -> weight):")
    for idx in top:
        print(f"  q{idx:<4d} -> {theta[idx]: .4f}")


if __name__ == "__main__":
    main()
