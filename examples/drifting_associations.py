"""Tracking drifting associations with a private incremental summarizer.

The paper's Generalization discussion (§1): when the stream is not i.i.d.,
the incremental minimizer ``θ̂_t`` acts as a *summarizer* of the history —
"these associations would need to be constantly re-evaluated over time as
new data arrives" (public health, social science use cases).

This example builds a piecewise-stationary stream whose true parameter
jumps halfway, and shows the private incremental estimate (Algorithm 2 with
the unknown-horizon Hybrid tree variant conceptually — here with a known
horizon) swinging from the first segment's parameter toward the prefix
blend, exactly as the exact minimizer does.

Run with:  python examples/drifting_associations.py
"""

import numpy as np

from repro import (
    IncrementalRunner,
    L2Ball,
    NonPrivateIncremental,
    PrivacyParams,
    PrivIncReg1,
)
from repro.data import make_drift_stream


def main() -> None:
    horizon, dim = 128, 6
    constraint = L2Ball(dim)
    stream, segment_thetas = make_drift_stream(
        horizon, dim, n_segments=2, noise_std=0.03, rng=9
    )
    theta_a, theta_b = segment_thetas
    print(f"Drift stream: T={horizon}, d={dim}; parameter jumps at t={horizon // 2}")
    print(f"‖θ_A − θ_B‖ = {np.linalg.norm(theta_a - theta_b):.3f}\n")

    mechanism = PrivIncReg1(
        horizon=horizon, constraint=constraint,
        params=PrivacyParams(2.0, 1e-6), rng=3,
    )
    runner = IncrementalRunner(constraint, eval_every=16, keep_thetas=True)
    private_run = runner.run(mechanism, stream)
    exact_run = runner.run(
        NonPrivateIncremental(constraint), stream
    )

    print("   t | ‖θ_priv − θ_A‖ | ‖θ_priv − θ_B‖ | excess (priv) | excess (exact)")
    for idx, t in enumerate(private_run.trace.timesteps):
        theta_t = private_run.thetas[idx]
        print(f"{t:4d} | {np.linalg.norm(theta_t - theta_a):15.3f} "
              f"| {np.linalg.norm(theta_t - theta_b):15.3f} "
              f"| {private_run.trace.excess[idx]:13.3f} "
              f"| {exact_run.trace.excess[idx]:14.6f}")

    print("\nThe summarizer starts at θ_A, then drifts toward the prefix "
          "blend after the change-point — while every release stays "
          "(ε, δ)-differentially private.")


if __name__ == "__main__":
    main()
