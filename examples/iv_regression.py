"""Private two-stage least squares over a confounded stream.

A hidden confounder enters both the covariate and the response, so an
ordinary (even non-private) least-squares fit is biased away from the
structural parameter ``θ*`` — while two-stage least squares through the
exogenous instruments recovers it.  This example runs the private
incremental 2SLS estimator (``PrivIncIV``, whose (ZᵀZ, ZᵀX, Zᵀy) moment
bundle rides the same tree mechanisms as Algorithm 2), then serves the
identical workload through a sharded ``ShardedStream(backend="iv")``
front, and compares both against the non-private 2SLS answer and the
confounded OLS fit.

Run with:  python examples/iv_regression.py
"""

import numpy as np

from repro import L2Ball, PrivacyParams, PrivIncIV, two_stage_least_squares
from repro.data import make_iv_stream
from repro.streaming import ShardedStream


def main() -> None:
    horizon, dim, instruments = 32768, 4, 6
    epsilon, delta = 4.0, 1e-6
    constraint = L2Ball(dim=dim, radius=1.0)

    print(
        f"Stream: T={horizon}, d={dim}, p={instruments};  "
        f"privacy: (ε={epsilon}, δ={delta})"
    )
    stream = make_iv_stream(
        horizon, dim, instruments,
        instrument_strength=0.85, endogeneity=0.6, noise_std=0.02, rng=42,
    )

    # References: 2SLS (identifies θ*) vs confounded OLS (does not).
    two_sls = two_stage_least_squares(stream.zs, stream.xs, stream.ys)
    gram = stream.xs.T @ stream.xs
    ols = np.linalg.pinv(gram, hermitian=True) @ (stream.xs.T @ stream.ys)
    print(f"\n‖2SLS − θ*‖ (non-private) : {np.linalg.norm(two_sls - stream.theta_star):.4f}")
    print(f"‖OLS  − θ*‖ (confounded)  : {np.linalg.norm(ols - stream.theta_star):.4f}")

    # Standalone private estimator, one batch ingest + post-hoc polish.
    mechanism = PrivIncIV(
        horizon=horizon, constraint=constraint, instruments=instruments,
        params=PrivacyParams(epsilon, delta), rng=0,
    )
    mechanism.observe_batch(stream.zs, stream.xs, stream.ys)
    for _ in range(8):  # post-processing: re-solve against released moments
        theta_priv = mechanism.refresh()
    print(f"‖PrivIncIV − 2SLS‖        : {np.linalg.norm(theta_priv - two_sls):.4f}")
    print(f"‖PrivIncIV − θ*‖          : {np.linalg.norm(theta_priv - stream.theta_star):.4f}")
    print(f"Mechanism memory (floats) : {mechanism.memory_floats()}")
    print("\nPrivacy ledger (standalone):")
    print(mechanism.accountant.summary())

    # The same workload through the sharded serving front: K workers each
    # carrying the three-statistic bundle, merged slot-by-slot at refresh.
    served = ShardedStream(
        constraint, PrivacyParams(epsilon, delta), 4,
        horizon=horizon, backend="iv", instruments=instruments, rng=0,
    )
    served.observe_batch(stream.stacked(), stream.ys)
    theta_served = served.current_estimate()
    print(f"\nServed (K=4 shards)       : ‖θ − θ*‖ = "
          f"{np.linalg.norm(theta_served - stream.theta_star):.4f}")
    print(f"Merged bundle slots       : {list(served.merged_bundle())}")
    served.close()


if __name__ == "__main__":
    main()
