"""Compare all the paper's mechanisms on one stream at equal budget.

Reproduces the narrative of Table 1 and Remark 4.3 at laptop scale: the
naive recompute-every-step approach (§1), the generic transformation
(Mechanism 1, Theorem 3.1), the tree-mechanism regression (Algorithm 2,
Theorem 4.2) and the projected regression (Algorithm 3, Theorem 5.7), all
at the same total ``(ε, δ)``.

Run with:  python examples/mechanism_comparison.py
"""

import time


from repro import (
    IncrementalRunner,
    L2Ball,
    NaiveRecompute,
    NoisySGD,
    NonPrivateIncremental,
    PrivacyParams,
    PrivIncERM,
    PrivIncReg1,
    PrivIncReg2,
    SquaredLoss,
    StaticOutput,
    tau_convex,
)
from repro.data import make_dense_stream


def main() -> None:
    # The tree mechanisms' advantage is asymptotic in T (their noise is
    # polylog in T while the signal grows linearly), and what matters for
    # where a run sits on that curve is roughly the product T·ε.  Keeping
    # the demo fast forces a short stream, so ε is set high to land in the
    # informative regime; at production scale (T in the millions) the same
    # shapes appear at ε ≈ 1.  Shrink ε or T to watch every private curve
    # collapse onto the trivial static baseline.
    horizon, dim, sparsity = 1024, 8, 2
    budget = PrivacyParams(epsilon=16.0, delta=1e-6)
    constraint = L2Ball(dim)
    stream = make_dense_stream(horizon, dim, noise_std=0.05, rng=11)
    runner = IncrementalRunner(constraint, eval_every=128)

    def sgd_factory(seed):
        return lambda b: NoisySGD(SquaredLoss(), constraint, b,
                                  rng=seed, iteration_cap=300)

    tau = tau_convex(horizon, dim, budget.epsilon)
    estimators = {
        "non-private (exact)": NonPrivateIncremental(constraint),
        "static θ=0 (trivial DP)": StaticOutput(constraint),
        "naive recompute (§1)": NaiveRecompute(
            horizon, constraint, budget, sgd_factory(1)),
        f"PrivIncERM (Mech 1, τ={tau})": PrivIncERM(
            horizon, constraint, budget, tau, sgd_factory(2)),
        "PrivIncReg1 (Alg 2, tree)": PrivIncReg1(
            horizon, constraint, budget, rng=3),
        "PrivIncReg2 (Alg 3, projected)": PrivIncReg2(
            horizon, constraint, L2Ball(dim), budget,
            rng=4, solve_every=16),
    }

    print(f"Stream: T={horizon}, d={dim}, {sparsity}-sparse covariates; "
          f"budget {budget}")
    print(f"\n{'mechanism':34s} | {'max excess':>10s} | {'mean excess':>11s} "
          f"| {'seconds':>7s}")
    print("-" * 74)
    for name, estimator in estimators.items():
        started = time.perf_counter()
        result = runner.run(estimator, stream)
        elapsed = time.perf_counter() - started
        print(f"{name:34s} | {result.trace.max_excess():10.3f} "
              f"| {result.trace.mean_excess():11.3f} | {elapsed:7.2f}")

    print("\nPaper's story at this scale: the tree-based regression "
          "mechanisms (Algs 2-3)\nbeat the static/trivial baseline and the "
          "generic per-step approaches, whose\nper-invocation budgets are "
          "crushed by composition (the √T / T^{1/3} penalties).")
    print("The Alg 2 vs Alg 3 crossover in d is explored in "
          "benchmarks/bench_crossover_highdim.py.")


if __name__ == "__main__":
    main()
