"""Why Algorithm 3 needs Gordon's theorem: the adaptive-stream attack.

The paper (§5, footnote 10) observes that classical Johnson-Lindenstrauss
guarantees collapse in a streaming setting: once the projection ``Φ`` is
fixed (and observable), an adversary can choose covariates *afterwards*
whose norms the projection destroys.  Gordon's theorem repairs this with a
guarantee that is uniform over a whole low-width domain, so adaptivity
buys the adversary nothing.

This example stages both sides:

1. an unrestricted adversary annihilates a JL-sized projection (it just
   picks kernel vectors);
2. the same adversary restricted to the k-sparse domain cannot push the
   distortion of a Gordon-sized projection past the target γ.

Run with:  python examples/adaptive_adversary.py
"""

import numpy as np

from repro import GaussianProjection, SparseVectors, gordon_dimension
from repro.data import adaptive_null_space_points, adaptive_sparse_points


def main() -> None:
    dim, sparsity, gamma = 400, 4, 0.5
    domain = SparseVectors(dim, sparsity)
    width = domain.gaussian_width()

    jl_dim = 24  # a "log n"-style JL sizing, blind to adaptivity
    gordon_dim = gordon_dimension(width, gamma, beta=0.05, max_dim=dim)

    print(f"Ambient d={dim}, domain: {sparsity}-sparse unit vectors "
          f"(w(X) = {width:.2f})")
    print(f"JL-style m = {jl_dim}  vs  Gordon m = {gordon_dim} "
          f"(target γ = {gamma})\n")

    # --- Attack 1: unrestricted adversary vs the JL-sized projection ----
    jl_projection = GaussianProjection(dim, jl_dim, rng=0)
    kernel_points = adaptive_null_space_points(jl_projection, count=3)
    print("Unrestricted adaptive adversary vs JL-sized Φ:")
    for i, x in enumerate(kernel_points):
        print(f"  attack {i}: ‖x‖ = {np.linalg.norm(x):.3f}, "
              f"‖Φx‖ = {np.linalg.norm(jl_projection.apply(x)):.2e}  (annihilated)")

    # --- Attack 2: sparse adversary vs both projections -----------------
    print("\nSparse-domain adaptive adversary (strongest k-sparse attack):")
    for label, projection in (
        ("JL-sized Φ    ", GaussianProjection(dim, jl_dim, rng=1)),
        ("Gordon-sized Φ", GaussianProjection(dim, gordon_dim, rng=2)),
    ):
        attack = adaptive_sparse_points(
            projection, sparsity, count=5, candidates=300, rng=3
        )
        distortion = projection.distortion(attack)
        verdict = "SAFE (≤ γ)" if distortion <= gamma else "BROKEN (> γ)"
        print(f"  {label}: worst distortion = {distortion:.3f}  -> {verdict}")

    print("\nConclusion: sizing m by w(X)² (Gordon) is what lets Algorithm 3"
          "\nsurvive adaptively chosen stream points — log-sized JL does not.")


if __name__ == "__main__":
    main()
