"""The robust extension: private regression when only *some* inputs are nice.

Paper §5.2 (final part): covariates are supposed to come from a low-width
domain ``G`` (here: sparse sensor readings), but a fraction of the stream is
dense garbage — cosmic-ray glitches, miscalibrated sensors.  Dropping the
garbage is the obvious fix, but *data-dependent dropping is not private*.
The paper's mechanism replaces out-of-domain points with the neutral
element ``(0, 0)`` before they enter the tree mechanisms, preserving both
the sensitivity calibration and the Theorem 5.7 bound (with
``W = w(G) + w(C)``) on the in-domain risk.

This example runs the robust mechanism over a contaminated stream and
reports the in-domain (G-subset) risk it is designed to control.

Run with:  python examples/robust_oracle_stream.py
"""

import numpy as np

from repro import (
    L1Ball,
    PrivacyParams,
    RobustPrivIncReg,
    SparseVectors,
)
from repro.data import make_mixed_width_stream
from repro.erm.solvers import exact_least_squares


def main() -> None:
    horizon, dim, sparsity = 96, 60, 4
    outlier_fraction = 0.3
    constraint = L1Ball(dim)
    good_domain = SparseVectors(dim, sparsity)

    stream, in_g = make_mixed_width_stream(
        horizon, dim, sparsity, outlier_fraction, noise_std=0.05, rng=5
    )
    print(f"Contaminated stream: T={horizon}, d={dim}; "
          f"{int((~in_g).sum())} dense outliers ({(~in_g).mean():.0%})")

    mechanism = RobustPrivIncReg(
        horizon=horizon,
        constraint=constraint,
        good_domain=good_domain,
        params=PrivacyParams(1.5, 1e-6),
        solve_every=8,
        rng=2,
    )

    for x, y in stream:
        theta = mechanism.observe(x, y)

    print(f"Oracle accepted {mechanism.accepted} points, substituted "
          f"{mechanism.substituted} with the neutral (0, 0) element")
    print(f"Projection sized by w(G)+w(C) = {mechanism.inner.total_width:.2f} "
          f"-> m = {mechanism.inner.projected_dim}")

    # Evaluate on the G-subset risk the theorem controls.
    good_xs, good_ys = stream.xs[in_g], stream.ys[in_g]
    theta_hat = exact_least_squares(good_xs, good_ys, constraint, iterations=600)

    def subset_risk(parameter):
        return float(np.sum((good_ys - good_xs @ parameter) ** 2))

    private_risk = subset_risk(theta)
    optimal_risk = subset_risk(theta_hat)
    zero_risk = subset_risk(np.zeros(dim))
    print(f"\nG-subset risk:  private = {private_risk:.3f}, "
          f"optimal = {optimal_risk:.3f}, zero-model = {zero_risk:.3f}")
    print(f"G-subset excess risk of the robust mechanism: "
          f"{private_risk - optimal_risk:.3f}")


if __name__ == "__main__":
    main()
